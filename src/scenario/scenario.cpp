#include "scenario/scenario.hpp"

#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "graph/level_sets.hpp"
#include "graph/sp_tree.hpp"

namespace expmk::scenario {

namespace {

/// Process-wide compile counter (relaxed: a metrics hook, not a fence).
std::atomic<std::uint64_t> g_compiled{0};
/// Process-wide patch counter — same role for the incremental path.
std::atomic<std::uint64_t> g_patched{0};

}  // namespace

/// Structure-derived caches built on first use and shared by patch
/// clones. Heap-held because std::once_flag is neither movable nor
/// copyable but Scenario must stay movable.
struct Scenario::DerivedCaches {
  std::once_flag levels_once;
  std::unique_ptr<const graph::LevelSets> levels;
  std::once_flag sp_once;
  std::unique_ptr<const graph::SpDecomposition> sp;
};

FailureSpec FailureSpec::per_task(std::vector<double> rates) {
  FailureSpec spec;
  spec.rates_ = std::move(rates);
  if (spec.rates_.empty()) {
    throw std::invalid_argument(
        "FailureSpec::per_task: empty rate vector (use uniform() for the "
        "single-rate model)");
  }
  return spec;
}

double FailureSpec::uniform_lambda() const {
  if (heterogeneous()) {
    throw std::logic_error(
        "FailureSpec: uniform_lambda() on a heterogeneous spec — check "
        "heterogeneous() or use Scenario::rates()");
  }
  return lambda_;
}

Scenario Scenario::compile(const graph::Dag& dag, FailureSpec failure,
                           core::RetryModel retry) {
  return Scenario(dag, std::move(failure), retry);
}

Scenario Scenario::calibrated(const graph::Dag& dag, double pfail,
                              core::RetryModel retry) {
  return compile(dag, FailureSpec(core::calibrate(dag, pfail)), retry);
}

std::uint64_t Scenario::compiled_count() noexcept {
  return g_compiled.load(std::memory_order_relaxed);
}

std::uint64_t Scenario::patched_count() noexcept {
  return g_patched.load(std::memory_order_relaxed);
}

Scenario::Scenario(graph::Dag dag, FailureSpec failure,
                   core::RetryModel retry)
    : dag_(std::make_shared<const graph::Dag>(std::move(dag))),
      csr_(std::make_shared<const graph::CsrDag>(*dag_)),
      failure_(std::move(failure)),
      retry_(retry),
      derived_(std::make_shared<DerivedCaches>()) {
  const std::size_t n = dag_->task_count();

  // Validate the task weights before deriving anything from them: the Dag
  // API rejects negatives but `weight < 0.0` is false for NaN, so a NaN
  // (or inf) weight would otherwise flow silently into every method's
  // p_success/duration arithmetic. Compile is the one choke point every
  // evaluator passes.
  for (graph::TaskId i = 0; i < n; ++i) {
    const double a = dag_->weight(i);
    if (!(a >= 0.0) || !std::isfinite(a)) {
      throw std::invalid_argument(
          "Scenario: task weights must be finite and >= 0 (task " +
          std::to_string(i) + ")");
    }
  }

  // Validate the spec against this DAG before deriving anything from it.
  if (failure_.heterogeneous()) {
    const auto& rates = failure_.per_task_rates();
    if (rates.size() != n) {
      throw std::invalid_argument(
          "Scenario: per-task rate vector size " +
          std::to_string(rates.size()) + " != task count " +
          std::to_string(n));
    }
    for (const double r : rates) {
      if (!(r >= 0.0) || !std::isfinite(r)) {
        throw std::invalid_argument(
            "Scenario: per-task rates must be finite and >= 0");
      }
    }
  } else if (!(failure_.uniform_lambda() >= 0.0) ||
             !std::isfinite(failure_.uniform_lambda())) {
    // Mirrors FailureModel::p_success's negative-lambda rejection, but
    // at compile time instead of deep inside the first estimator call.
    throw std::invalid_argument("Scenario: lambda must be finite and >= 0");
  }

  rates_.resize(n);
  p_success_.resize(n);
  expected_durations_.resize(n);
  failure_free_ = true;
  const bool geometric = retry_ == core::RetryModel::Geometric;
  for (graph::TaskId i = 0; i < n; ++i) {
    const double lambda = failure_.heterogeneous()
                              ? failure_.per_task_rates()[i]
                              : failure_.uniform_lambda();
    const double a = dag_->weight(i);
    // Same expressions as FailureModel::p_success / expected_duration so
    // the uniform path stays bit-identical to the pre-Scenario code.
    const double p = std::exp(-lambda * a);
    rates_[i] = lambda;
    p_success_[i] = p;
    expected_durations_[i] =
        geometric ? a * std::exp(lambda * a) : a * (2.0 - p);
    failure_free_ = failure_free_ && lambda <= 0.0;
  }

  // Sampler constants in CSR position order — the layout mc/trial.hpp's
  // fused kernel consumes directly (see that header for the fast/slow
  // path split the three arrays encode).
  rates_csr_.resize(n);
  p_success_csr_.resize(n);
  q_fail_csr_.resize(n);
  inv_log_q_csr_.resize(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const graph::TaskId id = csr_->original_id(pos);
    const double p = p_success_[id];
    rates_csr_[pos] = rates_[id];
    p_success_csr_[pos] = p;
    // q_fail <= 0 (p >= 1) makes the sampler fast path unconditional.
    q_fail_csr_[pos] = 1.0 - p;
    // Only read on the slow path, where q_fail > 0 implies p < 1 and the
    // log is finite and negative (p == 0 artifacts are absorbed by the
    // sampler's execution cap).
    inv_log_q_csr_[pos] = 1.0 / std::log1p(-p);
  }

  for (graph::TaskId i = 0; i < n; ++i) {
    if (dag_->successors(i).empty()) exits_.push_back(i);
  }

  finish_csr_.resize(n);
  critical_path_ =
      n == 0 ? 0.0
             : graph::critical_path_length(*csr_, csr_->weights(),
                                           finish_csr_);
  mean_weight_ = n == 0 ? 0.0 : dag_->mean_weight();
  total_weight_ = dag_->total_weight();

  g_compiled.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------- patching

Scenario Scenario::clone_for_patch() const {
  Scenario out;
  out.dag_ = dag_;
  out.csr_ = csr_;
  out.failure_ = failure_;
  out.retry_ = retry_;
  out.failure_free_ = failure_free_;
  out.exits_ = exits_;
  out.rates_ = rates_;
  out.p_success_ = p_success_;
  out.expected_durations_ = expected_durations_;
  out.rates_csr_ = rates_csr_;
  out.p_success_csr_ = p_success_csr_;
  out.q_fail_csr_ = q_fail_csr_;
  out.inv_log_q_csr_ = inv_log_q_csr_;
  out.finish_csr_ = finish_csr_;
  out.critical_path_ = critical_path_;
  out.mean_weight_ = mean_weight_;
  out.total_weight_ = total_weight_;
  out.derived_ = derived_;  // structure-only: valid for every patch clone
  return out;
}

void Scenario::rederive_task(graph::TaskId i, double lambda,
                             bool geometric) {
  // compile()'s exact expressions — recomputing from identical inputs
  // yields identical bits, which is the patch == compile contract.
  const double a = dag_->weight(i);
  const double p = std::exp(-lambda * a);
  rates_[i] = lambda;
  p_success_[i] = p;
  expected_durations_[i] =
      geometric ? a * std::exp(lambda * a) : a * (2.0 - p);
  const std::uint32_t pos = csr_->position_of(i);
  rates_csr_[pos] = lambda;
  p_success_csr_[pos] = p;
  q_fail_csr_[pos] = 1.0 - p;
  inv_log_q_csr_[pos] = 1.0 / std::log1p(-p);
}

void Scenario::repair_finish_cone(std::span<const graph::TaskId> tasks) {
  const std::size_t n = task_count();
  std::vector<char> dirty(n, 0);
  for (const graph::TaskId i : tasks) dirty[csr_->position_of(i)] = 1;

  // Value-based wave in position (= topological) order: recompute a dirty
  // vertex from its predecessors' finish times; only an actual change
  // propagates to the successors. The per-vertex expression and the
  // predecessor edge order are the ones graph::critical_path_length uses,
  // so surviving values are bit-identical to a full recompute.
  const auto off = csr_->pred_offsets();
  const auto pred = csr_->pred_index();
  const auto w = csr_->weights();
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!dirty[v]) continue;
    double start = 0.0;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
      const double f = finish_csr_[pred[e]];
      if (f > start) start = f;
    }
    const double fv = start + w[v];
    if (fv == finish_csr_[v]) continue;  // absorbed: the wave stops here
    finish_csr_[v] = fv;
    for (const std::uint32_t s : csr_->succs(v)) dirty[s] = 1;
  }

  double best = 0.0;
  for (const double f : finish_csr_) {
    if (f > best) best = f;
  }
  critical_path_ = best;
}

Scenario Scenario::with_failure(FailureSpec failure) const {
  const std::size_t n = task_count();
  if (failure.heterogeneous()) {
    const auto& rates = failure.per_task_rates();
    if (rates.size() != n) {
      throw std::invalid_argument(
          "Scenario::with_failure: per-task rate vector size " +
          std::to_string(rates.size()) + " != task count " +
          std::to_string(n));
    }
    for (const double r : rates) {
      if (!(r >= 0.0) || !std::isfinite(r)) {
        throw std::invalid_argument(
            "Scenario::with_failure: rates must be finite and >= 0");
      }
    }
  } else if (!(failure.uniform_lambda() >= 0.0) ||
             !std::isfinite(failure.uniform_lambda())) {
    throw std::invalid_argument(
        "Scenario::with_failure: lambda must be finite and >= 0");
  }

  Scenario out = clone_for_patch();
  out.failure_ = std::move(failure);
  out.failure_free_ = true;
  const bool geometric = retry_ == core::RetryModel::Geometric;
  for (graph::TaskId i = 0; i < n; ++i) {
    const double lambda = out.failure_.heterogeneous()
                              ? out.failure_.per_task_rates()[i]
                              : out.failure_.uniform_lambda();
    // An unchanged rate keeps its cached constants — recomputing them
    // from the same inputs would reproduce the same bits, so skipping
    // the exp/log1p pair is free.
    if (lambda != out.rates_[i]) out.rederive_task(i, lambda, geometric);
    out.failure_free_ = out.failure_free_ && lambda <= 0.0;
  }
  g_patched.fetch_add(1, std::memory_order_relaxed);
  return out;
}

Scenario Scenario::patch(std::span<const graph::TaskId> tasks,
                         std::span<const double> new_rates,
                         std::span<const double> new_weights) const {
  const std::size_t n = task_count();
  const std::size_t k = tasks.size();
  if (new_rates.empty() && new_weights.empty()) {
    throw std::invalid_argument(
        "Scenario::patch: no new rates or weights given");
  }
  if ((!new_rates.empty() && new_rates.size() != k) ||
      (!new_weights.empty() && new_weights.size() != k)) {
    throw std::invalid_argument(
        "Scenario::patch: tasks/new_rates/new_weights size mismatch");
  }
  for (const graph::TaskId i : tasks) {
    if (i >= n) {
      throw std::out_of_range("Scenario::patch: invalid task id " +
                              std::to_string(i));
    }
  }
  for (const double r : new_rates) {
    if (!(r >= 0.0) || !std::isfinite(r)) {
      throw std::invalid_argument(
          "Scenario::patch: rates must be finite and >= 0");
    }
  }
  for (const double w : new_weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "Scenario::patch: task weights must be finite and >= 0");
    }
  }

  Scenario out = clone_for_patch();

  if (!new_weights.empty()) {
    // Weight patch: copy the Dag (set_weight needs mutation), rebuild the
    // CSR weight plane WITHOUT re-running Kahn (the adjacency — and hence
    // the topological renumbering — is unchanged), repair the finish cone.
    auto dag2 = std::make_shared<graph::Dag>(*dag_);
    for (std::size_t j = 0; j < k; ++j) {
      dag2->set_weight(tasks[j], new_weights[j]);
    }
    out.csr_ = std::make_shared<const graph::CsrDag>(*csr_, dag2->weights());
    out.dag_ = std::move(dag2);
    out.mean_weight_ = n == 0 ? 0.0 : out.dag_->mean_weight();
    out.total_weight_ = out.dag_->total_weight();
    out.repair_finish_cone(tasks);
  }

  const bool geometric = retry_ == core::RetryModel::Geometric;
  if (!new_rates.empty()) {
    // The clone's spec must match what a fresh compile of the patched
    // inputs would carry: still uniform if every patched rate equals the
    // uniform lambda, per-task otherwise.
    bool still_uniform = !failure_.heterogeneous();
    if (still_uniform) {
      for (const double r : new_rates) {
        still_uniform = still_uniform && r == failure_.uniform_lambda();
      }
    }
    if (!still_uniform) {
      std::vector<double> rates(out.rates_.begin(), out.rates_.end());
      for (std::size_t j = 0; j < k; ++j) rates[tasks[j]] = new_rates[j];
      out.failure_ = FailureSpec::per_task(std::move(rates));
    }
    for (std::size_t j = 0; j < k; ++j) {
      out.rederive_task(tasks[j], new_rates[j], geometric);
    }
    out.failure_free_ = true;
    for (const double r : out.rates_) {
      out.failure_free_ = out.failure_free_ && r <= 0.0;
    }
  } else {
    // Weight-only patch: rates unchanged, but p/durations depend on the
    // weights, so the patched tasks' constants must be re-derived.
    for (const graph::TaskId i : tasks) {
      out.rederive_task(i, out.rates_[i], geometric);
    }
  }

  g_patched.fetch_add(1, std::memory_order_relaxed);
  return out;
}

// ------------------------------------------- lazy structural caches

const graph::LevelSets& Scenario::level_sets() const {
  std::call_once(derived_->levels_once, [&] {
    derived_->levels =
        std::make_unique<const graph::LevelSets>(graph::build_level_sets(*csr_));
  });
  return *derived_->levels;
}

const graph::SpDecomposition& Scenario::sp_decomposition() const {
  std::call_once(derived_->sp_once, [&] {
    derived_->sp = std::make_unique<const graph::SpDecomposition>(
        graph::sp_collapse(*dag_));
  });
  return *derived_->sp;
}

}  // namespace expmk::scenario
