// scenario/content_hash.hpp
//
// The stable content hash behind the serving layer's scenario cache
// (src/serve/cache.hpp): one 64-bit key for a (task graph, failure spec,
// retry model) cell, computed from the CANONICAL serialized form of the
// graph so that any two requests describing the same cell — regardless
// of whitespace, comments or field formatting in what the client sent —
// collide on purpose and compile once.
//
// Definition (version tag "expmk-content-hash-v1", pinned by golden
// values in tests/test_content_hash.cpp — the key must survive
// refactors, because clients hold it across server restarts and
// `expmk_cli estimate` prints it for correlation with cache entries):
//
//   FNV-1a 64 over the byte sequence
//     "expmk-content-hash-v1"
//     | dag_bytes                  (canonical expmk-taskgraph text)
//     | 'U' lambda-bits            (uniform FailureSpec), or
//       'H' count rate-bits...     (per-task FailureSpec)
//     | 'T' (TwoState) / 'G' (Geometric)
//   finalized with the splitmix64 mix (the FNV state is well distributed
//   in the low bits but the serve cache shards on the TOP bits).
//
// Doubles are hashed by their IEEE-754 bit pattern — the same
// no-rounding contract the taskgraph-v2 writer keeps with max_digits10.
// `dag_bytes` must be the canonical serialization: graph::to_taskgraph
// output (tasks in id order), WITHOUT rates for a uniform spec and WITH
// the spec's own rates for a heterogeneous one — the convenience
// overload below does exactly that.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/failure_model.hpp"
#include "graph/dag.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::scenario {

/// The version-tagged content hash over an already-serialized canonical
/// graph (see the file comment for the exact byte layout).
[[nodiscard]] std::uint64_t content_hash(std::string_view dag_bytes,
                                         const FailureSpec& failure,
                                         core::RetryModel retry);

/// Convenience: canonically serializes `dag` (with the spec's rates when
/// heterogeneous) and hashes. This is what the serving layer and
/// `expmk_cli estimate` call.
[[nodiscard]] std::uint64_t content_hash(const graph::Dag& dag,
                                         const FailureSpec& failure,
                                         core::RetryModel retry);

/// Hash of the STRUCTURE only — canonical graph bytes (weights included,
/// rates excluded) and the retry model, under its own version tag
/// ("expmk-structure-hash-v1"). Two cells with equal structure hashes but
/// different content hashes differ only in their FailureSpec, so either
/// one's compiled Scenario can be turned into the other via
/// Scenario::with_failure — the serving cache's patch-on-miss fast path.
[[nodiscard]] std::uint64_t structure_hash(const graph::Dag& dag,
                                           core::RetryModel retry);

/// Canonical 16-lowercase-hex-digit rendering (zero padded) — the wire
/// form of a cache key in the expmk-serve-v1 protocol.
[[nodiscard]] std::string content_hash_hex(std::uint64_t hash);

/// Parses the 16-hex-digit wire form; returns false on anything that is
/// not exactly 16 hex digits.
EXPMK_NOALLOC [[nodiscard]] bool parse_content_hash_hex(
    std::string_view hex, std::uint64_t& out) noexcept;

}  // namespace expmk::scenario
