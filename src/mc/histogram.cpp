#include "mc/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <stdexcept>

namespace expmk::mc {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins >= 1");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

Histogram Histogram::from_samples(const std::vector<double>& samples,
                                  std::size_t bins) {
  if (samples.empty()) {
    throw std::invalid_argument("Histogram::from_samples: no samples");
  }
  // Reject non-finite input before the minmax scan: a NaN would poison
  // the automatic range and produce a histogram no add() could fill.
  for (const double x : samples) {
    if (!std::isfinite(x)) {
      throw std::invalid_argument(
          "Histogram::from_samples: non-finite sample");
    }
  }
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  const double lo = *mn;
  double hi = *mx;
  if (hi <= lo) hi = lo + 1e-12 + std::fabs(lo) * 1e-12;
  Histogram h(lo, hi, bins);
  for (const double x : samples) h.add(x);
  return h;
}

void Histogram::add(double x) {
  // A NaN/inf sample would feed a non-finite value into the float->int
  // cast below, which is undefined behavior — reject it loudly instead.
  if (!std::isfinite(x)) {
    throw std::invalid_argument("Histogram::add: non-finite sample");
  }
  // Clamp in floating point BEFORE the integer cast: a finite but huge
  // sample (x ~ 1e300 against a unit range) would otherwise overflow the
  // cast itself — the same UB class as the NaN case above.
  const double t =
      std::clamp((x - lo_) / (hi_ - lo_), 0.0, 1.0);
  auto bin = static_cast<std::size_t>(t * static_cast<double>(bins()));
  if (bin >= bins()) bin = bins() - 1;  // t == 1.0 lands in the last bucket
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

void Histogram::print_ascii(std::ostream& os, std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  for (std::size_t b = 0; b < bins(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    os << bin_center(b) << "\t|" << std::string(bar, '#') << "  "
       << counts_[b] << '\n';
  }
}

double empirical_quantile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("empirical_quantile: no samples");
  }
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("empirical_quantile: p in [0,1]");
  }
  std::sort(samples.begin(), samples.end());
  const double idx = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - std::floor(idx);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double empirical_cdf(const std::vector<double>& samples, double x) {
  if (samples.empty()) {
    throw std::invalid_argument("empirical_cdf: no samples");
  }
  std::size_t count = 0;
  for (const double s : samples) {
    if (s <= x) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(samples.size());
}

}  // namespace expmk::mc
