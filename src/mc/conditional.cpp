#include "mc/conditional.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/csr.hpp"
#include "prob/rng.hpp"
#include "prob/statistics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace expmk::mc {

namespace {

struct Accum {
  prob::RunningStats stats;
  std::uint64_t rejections = 0;
  std::uint64_t censored = 0;
};

}  // namespace

ConditionalMcResult run_conditional_monte_carlo(
    const graph::Dag& g, const core::FailureModel& model,
    const ConditionalMcConfig& config) {
  return run_conditional_monte_carlo(
      scenario::Scenario::compile(g, scenario::FailureSpec(model),
                                  core::RetryModel::TwoState),
      config);
}

ConditionalMcResult run_conditional_monte_carlo(
    const scenario::Scenario& sc, const ConditionalMcConfig& config) {
  if (sc.retry() != core::RetryModel::TwoState) {
    throw std::invalid_argument(
        "run_conditional_monte_carlo: scenario must be compiled with the "
        "TwoState retry model");
  }
  if (config.trials == 0) {
    throw std::invalid_argument(
        "run_conditional_monte_carlo: trials must be >= 1");
  }
  if (config.max_rejections_per_trial == 0) {
    throw std::invalid_argument(
        "run_conditional_monte_carlo: max_rejections_per_trial must be >= 1");
  }
  const util::Timer timer;
  const graph::CsrDag& csr = sc.csr();
  const std::size_t n = sc.task_count();
  // Success probabilities in CSR position order: the sampling loop below
  // walks positions, so every per-task array it touches is sequential.
  const std::span<const double> p = sc.p_success_csr();

  ConditionalMcResult result;
  result.critical_path = sc.critical_path();

  double p0 = 1.0;
  for (const double pi : p) p0 *= pi;
  result.p_zero_failures = p0;

  if (p0 >= 1.0) {
    // No task can ever fail: the makespan is deterministic.
    result.mean = result.critical_path;
    result.conditional_mean = result.critical_path;
    result.trials = 0;
    result.seconds = timer.seconds();
    return result;
  }

  std::size_t threads = config.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::uint64_t trials = config.trials;
  const std::size_t chunks = std::min<std::uint64_t>(kEngineChunks, trials);

  const std::span<const double> w = csr.weights();
  std::vector<Accum> accums(chunks);
  util::ThreadPool pool(threads);
  pool.parallel_for_chunks(chunks, [&](std::size_t c) {
    Accum& acc = accums[c];
    const std::uint64_t begin = trials * c / chunks;
    const std::uint64_t end = trials * (c + 1) / chunks;
    // Per-worker scratch (CSR position order), sized once per chunk.
    std::vector<double> durations(n);
    std::vector<double> finish(n);
    for (std::uint64_t t = begin; t < end; ++t) {
      prob::McRng rng(config.seed, t);
      // Rejection: redraw the failure pattern until at least one failure.
      // If the cap is hit first (only plausible when 1 - p0 is
      // microscopic), the trial is *censored*: it contributes nothing to
      // the conditional statistics. Fabricating a sample instead — e.g.
      // the failure-free makespan — would pull the conditional mean
      // toward d(G) and bias the combined estimate downward.
      bool any = false;
      std::uint64_t attempts = 0;
      while (!any && attempts < config.max_rejections_per_trial) {
        ++attempts;
        for (std::size_t i = 0; i < n; ++i) {
          const bool failed = !rng.bernoulli(p[i]);
          durations[i] = failed ? 2.0 * w[i] : w[i];
          any = any || failed;
        }
      }
      if (any) {
        acc.rejections += attempts - 1;
        acc.stats.push(graph::critical_path_length(csr, durations, finish));
      } else {
        acc.rejections += attempts;
        ++acc.censored;
      }
    }
  });

  prob::RunningStats stats;
  std::uint64_t rejections = 0;
  std::uint64_t censored = 0;
  for (const Accum& acc : accums) {
    stats.merge(acc.stats);
    rejections += acc.rejections;
    censored += acc.censored;
  }

  result.censored_trials = censored;
  if (stats.count() == 0) {
    // Every trial censored: no conditional sample survived. Report the
    // only defensible fallback — d(G) — for the conditional stratum; its
    // weight (1 - p0) is microscopic by construction (the cap can only
    // bind when failures are astronomically rare), so the combined mean
    // is dominated by the exact p0 * d(G) term either way.
    result.conditional_mean = result.critical_path;
    result.mean = result.critical_path;
    result.std_error = 0.0;
  } else {
    result.conditional_mean = stats.mean();
    result.mean = p0 * result.critical_path + (1.0 - p0) * stats.mean();
    result.std_error = (1.0 - p0) * stats.standard_error();
  }
  result.ci95_half_width =
      prob::inverse_normal_cdf(0.975) * result.std_error;
  result.trials = stats.count();
  result.avg_rejections =
      stats.count() == 0
          ? 0.0
          : static_cast<double>(rejections) / static_cast<double>(stats.count());
  result.seconds = timer.seconds();
  return result;
}

}  // namespace expmk::mc
