// mc/planning.hpp
//
// Trial-count planning for the Monte-Carlo ground truth. The paper (II-A1)
// notes that "an interesting question is that of determining the number of
// trials to obtain a high confidence level" and side-steps it by using
// 300,000 trials; this module answers it:
//
//  * a priori (Hoeffding): the makespan is bounded by [d(G), 2 d(G)] under
//    the 2-state model, so trials >= ln(2/alpha) * range^2 / (2 eps^2)
//    guarantee P(|mean - E| > eps) <= alpha without any pilot run;
//  * a posteriori (CLT): from a pilot run's sample variance, the trials
//    needed for a target CI half-width.

#pragma once

#include <cstdint>

#include "mc/engine.hpp"
#include "prob/statistics.hpp"

namespace expmk::mc {

/// Hoeffding bound: trials needed so the empirical mean of a variable
/// bounded in [lo, hi] is within `epsilon` of its expectation with
/// probability >= confidence. Distribution-free, hence conservative.
[[nodiscard]] std::uint64_t hoeffding_trials(double lo, double hi,
                                             double epsilon,
                                             double confidence);

/// CLT-based planning: given a pilot's sample standard deviation, trials
/// needed for a CI half-width <= epsilon at the given confidence.
[[nodiscard]] std::uint64_t clt_trials(double sample_stddev, double epsilon,
                                       double confidence);

/// Convenience: plan from a pilot RunningStats for a *relative* target
/// (epsilon = relative_error * pilot mean).
[[nodiscard]] std::uint64_t plan_trials(const prob::RunningStats& pilot,
                                        double relative_error,
                                        double confidence);

/// Outcome of a pilot-driven plan: the pilot estimate itself plus the
/// total trial count the CLT bound asks for.
struct PilotPlan {
  McResult pilot;
  std::uint64_t planned_trials = 0;
};

/// End-to-end a-posteriori planning: runs `pilot_config` trials through
/// the (CSR-kernel) Monte-Carlo engine, then sizes the production run for
/// a relative CI half-width <= relative_error at the given confidence.
/// The pilot's own trials count toward the plan, so a plan smaller than
/// the pilot means "the pilot already suffices".
[[nodiscard]] PilotPlan plan_with_pilot(const graph::Dag& g,
                                        const core::FailureModel& model,
                                        double relative_error,
                                        double confidence,
                                        const McConfig& pilot_config = {
                                            .trials = 2000});

/// Scenario-based entry point: the pilot runs on the compiled scenario
/// (no CSR rebuild; heterogeneous rates supported; pilot_config.retry is
/// ignored in favor of the scenario's retry model).
[[nodiscard]] PilotPlan plan_with_pilot(const scenario::Scenario& sc,
                                        double relative_error,
                                        double confidence,
                                        const McConfig& pilot_config = {
                                            .trials = 2000});

}  // namespace expmk::mc
