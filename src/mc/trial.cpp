#include "mc/trial.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace expmk::mc {

TrialContext::TrialContext(const graph::Dag& g,
                           const core::FailureModel& model,
                           core::RetryModel retry_model)
    : owned_(std::make_shared<const scenario::Scenario>(
          scenario::Scenario::compile(g, scenario::FailureSpec(model),
                                      retry_model))) {
  dag_ = &owned_->dag();
  csr_ = &owned_->csr();
  p_success_ = owned_->p_success();
  p_success_csr_ = owned_->p_success_csr();
  q_fail_csr_ = owned_->q_fail_csr();
  inv_log_q_csr_ = owned_->inv_log_q_csr();
  retry_ = retry_model;
}

TrialContext::TrialContext(const scenario::Scenario& sc)
    : dag_(&sc.dag()),
      csr_(&sc.csr()),
      p_success_(sc.p_success()),
      p_success_csr_(sc.p_success_csr()),
      q_fail_csr_(sc.q_fail_csr()),
      inv_log_q_csr_(sc.inv_log_q_csr()),
      retry_(sc.retry()) {}

namespace {

/// Geometric slow path: at least one failure occurred (u <= 1 - p).
/// Inversion: failures F with P(F >= k) = (1-p)^k, F = floor(ln U / ln(1-p))
/// = floor(ln U * inv_log_q), capped. Clamp BEFORE the int cast: at extreme
/// lambda the inversion yields doubles far beyond int range and the cast
/// would be undefined behaviour.
EXPMK_NOALLOC inline int geometric_executions_slow(double u, double inv_log_q,
                                     int max_executions) {
  const double f = std::floor(std::log(u) * inv_log_q);
  if (!(f < static_cast<double>(max_executions))) {
    return max_executions;
  }
  const int failures = f < 0.0 ? 0 : static_cast<int>(f);
  const int executions = failures + 1;
  return executions < max_executions ? executions : max_executions;
}

/// Fused sample-and-longest-path sweep over the CSR view. One RNG draw per
/// task in position order; finish[] written strictly left to right. When
/// `durations_out` is non-null, per-task durations are written either
/// scattered into Dag id order through csr.order() (kDagOrderOut, the
/// adapter-facing form) or directly in position order (the form the CSR
/// level kernels consume). The duration is computed as a separate
/// statement from the finish update so the plain and scattering variants
/// perform bit-identical arithmetic.
template <bool kWithControl, bool kDagOrderOut = true>
EXPMK_NOALLOC inline TrialObservation trial_sweep(const TrialContext& ctx,
                                    prob::McRng& rng,
                                    std::span<double> finish,
                                    double* durations_out) {
  const graph::CsrDag& csr = ctx.csr();
  const std::size_t n = csr.task_count();
  assert(finish.size() == n);
  const std::span<const std::uint32_t> off = csr.pred_offsets();
  const std::span<const std::uint32_t> pred = csr.pred_index();
  const std::span<const graph::TaskId> order = csr.order();
  const double* const w = csr.weights().data();
  const double* const p = ctx.p_success_csr().data();
  const double* const qf = ctx.q_fail_csr().data();
  const double* const inv_log_q = ctx.inv_log_q_csr().data();
  const bool two_state = ctx.retry() == core::RetryModel::TwoState;

  double best = 0.0;
  double control = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    int executions = 1;
    if (two_state) {
      executions = rng.uniform() < p[v] ? 1 : 2;
    } else {
      const double u = rng.uniform_positive();
      if (u <= qf[v]) {
        executions = geometric_executions_slow(u, inv_log_q[v],
                                               ctx.max_executions);
      }
    }
    const double duration = w[v] * static_cast<double>(executions);
    if constexpr (kWithControl) {
      control += w[v] * static_cast<double>(executions - 1);
    }
    if (durations_out != nullptr) {
      durations_out[kDagOrderOut ? order[v] : v] = duration;
    }

    double start = 0.0;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
      const double f = finish[pred[e]];
      if (f > start) start = f;
    }
    const double fv = start + duration;
    finish[v] = fv;
    if (fv > best) best = fv;
  }
  return {best, control};
}

/// Per-thread finish scratch backing the Dag-facing adapters, so the old
/// signatures stay allocation-free per call after warm-up.
std::span<double> adapter_scratch(std::size_t n) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < n) scratch.resize(n);
  return {scratch.data(), n};
}

/// The adapters used to resize `durations` every call; now the buffer must
/// be sized once outside the trial loop. Enforced in Release too — an
/// undersized buffer would otherwise be an out-of-bounds scatter.
void check_durations(const TrialContext& ctx,
                     const std::vector<double>& durations) {
  if (durations.size() != ctx.dag().task_count()) {
    throw std::invalid_argument(
        "run_trial: durations must be pre-sized to task_count(); size the "
        "buffer once, outside the trial loop");
  }
}

/// Same Release-mode enforcement for the public CSR kernels (one branch
/// per trial, consistent with the graph:: CSR kernels' check_scratch).
EXPMK_NOALLOC void check_finish(const TrialContext& ctx, std::span<const double> finish) {
  if (finish.size() != ctx.csr().task_count()) {
    throw std::invalid_argument(
        "run_trial_csr: finish scratch must have size task_count()");
  }
}

}  // namespace

EXPMK_NOALLOC double run_trial_csr(const TrialContext& ctx, prob::McRng& rng,
                     std::span<double> finish) {
  check_finish(ctx, finish);
  return trial_sweep<false>(ctx, rng, finish, nullptr).makespan;
}

EXPMK_NOALLOC TrialObservation run_trial_with_control_csr(const TrialContext& ctx,
                                            prob::McRng& rng,
                                            std::span<double> finish) {
  check_finish(ctx, finish);
  return trial_sweep<true>(ctx, rng, finish, nullptr);
}

EXPMK_NOALLOC double run_trial_scatter_csr(const TrialContext& ctx, prob::McRng& rng,
                             std::span<double> finish,
                             std::span<double> durations) {
  check_finish(ctx, finish);
  if (durations.size() != ctx.dag().task_count()) {
    throw std::invalid_argument(
        "run_trial_scatter_csr: durations must have size task_count()");
  }
  return trial_sweep<false>(ctx, rng, finish, durations.data()).makespan;
}

EXPMK_NOALLOC double run_trial_durations_csr(const TrialContext& ctx,
                               prob::McRng& rng,
                               std::span<double> finish,
                               std::span<double> durations_pos) {
  check_finish(ctx, finish);
  if (durations_pos.size() != ctx.csr().task_count()) {
    throw std::invalid_argument(
        "run_trial_durations_csr: durations must have size task_count()");
  }
  return trial_sweep<false, /*kDagOrderOut=*/false>(ctx, rng, finish,
                                                    durations_pos.data())
      .makespan;
}

double run_trial(const TrialContext& ctx, prob::McRng& rng,
                 std::vector<double>& durations) {
  check_durations(ctx, durations);
  return trial_sweep<false>(ctx, rng, adapter_scratch(durations.size()),
                            durations.data())
      .makespan;
}

TrialObservation run_trial_with_control(const TrialContext& ctx,
                                        prob::McRng& rng,
                                        std::vector<double>& durations) {
  check_durations(ctx, durations);
  return trial_sweep<true>(ctx, rng, adapter_scratch(durations.size()),
                           durations.data());
}

double control_variate_mean(const TrialContext& ctx) {
  const graph::Dag& g = ctx.dag();
  const std::span<const double> p_success = ctx.p_success();
  double mean = 0.0;
  for (std::size_t i = 0; i < g.task_count(); ++i) {
    const double a = g.weights()[i];
    const double p = p_success[i];
    if (p >= 1.0) continue;
    if (ctx.retry() == core::RetryModel::TwoState) {
      mean += a * (1.0 - p);
    } else {
      // E[executions - 1] for the capped geometric: the cap's truncation
      // error is (1-p)^{cap}, negligible, but we account for it exactly:
      // E[min(F, cap)] = sum_{k=1..cap} P(F >= k) = sum (1-p)^k.
      const double q = 1.0 - p;
      double qk = q;
      double e = 0.0;
      for (int k = 1; k < ctx.max_executions; ++k) {
        e += qk;
        qk *= q;
      }
      mean += a * e;
    }
  }
  return mean;
}

}  // namespace expmk::mc
