#include "mc/trial.hpp"

#include <cmath>

#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::mc {

TrialContext::TrialContext(const graph::Dag& g,
                           const core::FailureModel& model,
                           core::RetryModel retry_model)
    : dag(&g),
      topo(graph::topological_order(g)),
      p_success(core::success_probabilities(g, model)),
      retry(retry_model) {}

namespace {

/// Samples the number of executions of one task (>= 1).
inline int sample_executions(const TrialContext& ctx, std::size_t i,
                             prob::Xoshiro256pp& rng) {
  const double p = ctx.p_success[i];
  if (p >= 1.0) return 1;
  if (ctx.retry == core::RetryModel::TwoState) {
    return rng.bernoulli(p) ? 1 : 2;
  }
  // Geometric: failures F with P(F >= k) = (1-p)^k, sampled by inversion:
  // F = floor( ln U / ln(1-p) ), capped. Clamp BEFORE the int cast: at
  // extreme lambda the inversion yields doubles far beyond int range and
  // the cast would be undefined behaviour.
  const double u = rng.uniform_positive();
  const double f = std::floor(std::log(u) / std::log1p(-p));
  if (!(f < static_cast<double>(ctx.max_executions))) {
    return ctx.max_executions;
  }
  const int failures = f < 0.0 ? 0 : static_cast<int>(f);
  const int executions = failures + 1;
  return executions < ctx.max_executions ? executions : ctx.max_executions;
}

}  // namespace

double run_trial(const TrialContext& ctx, prob::Xoshiro256pp& rng,
                 std::vector<double>& durations) {
  const graph::Dag& g = *ctx.dag;
  durations.resize(g.task_count());
  for (std::size_t i = 0; i < g.task_count(); ++i) {
    durations[i] =
        g.weights()[i] * static_cast<double>(sample_executions(ctx, i, rng));
  }
  return graph::critical_path_length(g, durations, ctx.topo);
}

TrialObservation run_trial_with_control(const TrialContext& ctx,
                                        prob::Xoshiro256pp& rng,
                                        std::vector<double>& durations) {
  const graph::Dag& g = *ctx.dag;
  durations.resize(g.task_count());
  double control = 0.0;
  for (std::size_t i = 0; i < g.task_count(); ++i) {
    const int executions = sample_executions(ctx, i, rng);
    const double a = g.weights()[i];
    durations[i] = a * static_cast<double>(executions);
    control += a * static_cast<double>(executions - 1);
  }
  return {graph::critical_path_length(g, durations, ctx.topo), control};
}

double control_variate_mean(const TrialContext& ctx) {
  const graph::Dag& g = *ctx.dag;
  double mean = 0.0;
  for (std::size_t i = 0; i < g.task_count(); ++i) {
    const double a = g.weights()[i];
    const double p = ctx.p_success[i];
    if (p >= 1.0) continue;
    if (ctx.retry == core::RetryModel::TwoState) {
      mean += a * (1.0 - p);
    } else {
      // E[executions - 1] for the capped geometric: the cap's truncation
      // error is (1-p)^{cap}, negligible, but we account for it exactly:
      // E[min(F, cap)] = sum_{k=1..cap} P(F >= k) = sum (1-p)^k.
      const double q = 1.0 - p;
      double qk = q;
      double e = 0.0;
      for (int k = 1; k < ctx.max_executions; ++k) {
        e += qk;
        qk *= q;
      }
      mean += a * e;
    }
  }
  return mean;
}

}  // namespace expmk::mc
