#include "mc/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "prob/statistics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace expmk::mc {

namespace {

/// Accumulators one worker fills for its slice of trials.
struct WorkerAccum {
  prob::RunningStats makespan;
  // Sums for the control-variate regression: Z, Z^2, L*Z.
  double sum_z = 0.0;
  double sum_zz = 0.0;
  double sum_lz = 0.0;
  std::vector<double> samples;
};

/// The engine body, over a prebuilt context (scenario-backed or legacy).
McResult run_monte_carlo_impl(const TrialContext& ctx,
                              const McConfig& config) {
  // A zero trial count is a misconfiguration (an estimate from nothing),
  // not a request to round up: fail loudly instead of silently clamping.
  if (config.trials == 0) {
    throw std::invalid_argument("run_monte_carlo: trials must be >= 1");
  }
  const util::Timer timer;
  const std::size_t n = ctx.csr().task_count();

  std::size_t threads = config.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::uint64_t trials = config.trials;
  const std::size_t chunks = std::min<std::uint64_t>(kEngineChunks, trials);

  std::vector<WorkerAccum> accums(chunks);
  util::ThreadPool pool(threads);
  pool.parallel_for_chunks(chunks, [&](std::size_t c) {
    WorkerAccum& acc = accums[c];
    const std::uint64_t begin = trials * c / chunks;
    const std::uint64_t end = trials * (c + 1) / chunks;
    if (config.capture_samples) acc.samples.reserve(end - begin);
    // Per-worker scratch, sized once per chunk: the CSR kernel allocates
    // nothing per trial.
    std::vector<double> finish(n);
    for (std::uint64_t t = begin; t < end; ++t) {
      prob::McRng rng(config.seed, t);
      const TrialObservation obs =
          run_trial_with_control_csr(ctx, rng, finish);
      acc.makespan.push(obs.makespan);
      acc.sum_z += obs.control;
      acc.sum_zz += obs.control * obs.control;
      acc.sum_lz += obs.makespan * obs.control;
      if (config.capture_samples) acc.samples.push_back(obs.makespan);
    }
  });

  prob::RunningStats stats;
  double sum_z = 0.0, sum_zz = 0.0, sum_lz = 0.0;
  std::vector<double> samples;
  for (const WorkerAccum& acc : accums) {
    stats.merge(acc.makespan);
    sum_z += acc.sum_z;
    sum_zz += acc.sum_zz;
    sum_lz += acc.sum_lz;
    if (config.capture_samples) {
      samples.insert(samples.end(), acc.samples.begin(), acc.samples.end());
    }
  }

  McResult result;
  result.trials = stats.count();
  result.plain_mean = stats.mean();
  result.min = stats.min();
  result.max = stats.max();

  if (!config.control_variate) {
    result.mean = stats.mean();
    result.variance = stats.variance();
    result.std_error = stats.standard_error();
  } else {
    // beta = Cov(L, Z) / Var(Z); estimator L - beta (Z - E[Z]).
    const double n = static_cast<double>(stats.count());
    const double mean_z = sum_z / n;
    const double var_z = std::max(0.0, sum_zz / n - mean_z * mean_z);
    const double cov_lz = sum_lz / n - stats.mean() * mean_z;
    const double beta = var_z > 0.0 ? cov_lz / var_z : 0.0;
    const double ez = control_variate_mean(ctx);
    result.mean = stats.mean() - beta * (mean_z - ez);
    // Var of the adjusted estimator: Var(L) - Cov^2/Var(Z) (asymptotic).
    const double var_plain = stats.variance();
    const double var_cv =
        std::max(0.0, var_plain - (var_z > 0.0 ? cov_lz * cov_lz / var_z : 0.0) *
                                      n / std::max(1.0, n - 1.0));
    result.variance = var_cv;
    result.std_error = std::sqrt(var_cv / n);
    result.variance_reduction =
        var_cv > 0.0 ? var_plain / var_cv
                     : std::numeric_limits<double>::infinity();
  }

  const double z95 = prob::inverse_normal_cdf(0.975);
  const double z99 = prob::inverse_normal_cdf(0.995);
  result.ci95_half_width = z95 * result.std_error;
  result.ci99_half_width = z99 * result.std_error;
  result.samples = std::move(samples);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace

McResult run_monte_carlo(const graph::Dag& g, const core::FailureModel& model,
                         const McConfig& config) {
  return run_monte_carlo_impl(TrialContext(g, model, config.retry), config);
}

McResult run_monte_carlo(const scenario::Scenario& sc,
                         const McConfig& config) {
  return run_monte_carlo_impl(TrialContext(sc), config);
}

}  // namespace expmk::mc
