#include "mc/planning.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace expmk::mc {

namespace {

void check_targets(double epsilon, double confidence) {
  if (epsilon <= 0.0) {
    throw std::invalid_argument("trial planning: epsilon must be > 0");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument(
        "trial planning: confidence must be in (0,1)");
  }
}

std::uint64_t ceil_to_u64(double x) {
  if (x < 1.0) return 1;
  if (x > 9e18) {
    throw std::overflow_error("trial planning: required trials overflow");
  }
  return static_cast<std::uint64_t>(std::ceil(x));
}

}  // namespace

std::uint64_t hoeffding_trials(double lo, double hi, double epsilon,
                               double confidence) {
  check_targets(epsilon, confidence);
  if (!(hi > lo)) {
    throw std::invalid_argument("hoeffding_trials: need lo < hi");
  }
  const double alpha = 1.0 - confidence;
  const double range = hi - lo;
  return ceil_to_u64(std::log(2.0 / alpha) * range * range /
                     (2.0 * epsilon * epsilon));
}

std::uint64_t clt_trials(double sample_stddev, double epsilon,
                         double confidence) {
  check_targets(epsilon, confidence);
  if (sample_stddev < 0.0) {
    throw std::invalid_argument("clt_trials: negative stddev");
  }
  if (sample_stddev == 0.0) return 1;
  const double z = prob::inverse_normal_cdf(0.5 + confidence / 2.0);
  const double n = z * sample_stddev / epsilon;
  return ceil_to_u64(n * n);
}

std::uint64_t plan_trials(const prob::RunningStats& pilot,
                          double relative_error, double confidence) {
  if (pilot.count() < 2) {
    throw std::invalid_argument("plan_trials: pilot needs >= 2 samples");
  }
  if (pilot.mean() <= 0.0) {
    throw std::invalid_argument("plan_trials: non-positive pilot mean");
  }
  return clt_trials(pilot.stddev(), relative_error * pilot.mean(),
                    confidence);
}

namespace {

PilotPlan plan_from_pilot_result(McResult pilot, double relative_error,
                                 double confidence) {
  PilotPlan out;
  out.pilot = std::move(pilot);
  if (out.pilot.mean <= 0.0) {
    throw std::invalid_argument("plan_with_pilot: non-positive pilot mean");
  }
  out.planned_trials = clt_trials(std::sqrt(out.pilot.variance),
                                  relative_error * out.pilot.mean,
                                  confidence);
  return out;
}

}  // namespace

PilotPlan plan_with_pilot(const graph::Dag& g,
                          const core::FailureModel& model,
                          double relative_error, double confidence,
                          const McConfig& pilot_config) {
  check_targets(relative_error, confidence);
  return plan_from_pilot_result(run_monte_carlo(g, model, pilot_config),
                                relative_error, confidence);
}

PilotPlan plan_with_pilot(const scenario::Scenario& sc,
                          double relative_error, double confidence,
                          const McConfig& pilot_config) {
  check_targets(relative_error, confidence);
  return plan_from_pilot_result(run_monte_carlo(sc, pilot_config),
                                relative_error, confidence);
}

}  // namespace expmk::mc
