// mc/trial.hpp
//
// Single Monte-Carlo trial: sample each task's duration under the silent-
// error model, then evaluate the DAG's longest path. The paper's ground
// truth (Section V-C) samples a time-to-next-failure ~ Exp(lambda) per
// attempt; an attempt fails iff that time is shorter than the task length,
// which is exactly a Bernoulli(1 - e^{-lambda a_i}) draw — so sampling the
// failure indicator directly is equivalent and faster.
//
// Hot-path layout (see DESIGN.md). The context precomputes a CsrDag —
// flattened adjacency, vertices renumbered into topological order — plus
// per-task sampling constants in that position order:
//   q_fail      = 1 - e^{-lambda a_i}   (fast-path threshold)
//   inv_log_q   = 1 / log1p(-p_success) (slow-path geometric inversion)
// so the geometric sampler pays ZERO transcendental calls on the (common)
// no-failure path and exactly one log() when a failure did occur, instead
// of the naive two logs per task. The CSR kernels fuse sampling with the
// longest-path sweep — one forward pass, no allocation, caller scratch.

#pragma once

#include <span>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"
#include "prob/rng.hpp"

namespace expmk::mc {

/// Precomputed per-task sampling constants, shared across trials.
struct TrialContext {
  const graph::Dag* dag = nullptr;
  /// Flattened topologically renumbered view; the trial kernels run on it.
  graph::CsrDag csr;
  /// The CSR position order as a Dag topological order (== csr.order());
  /// kept for consumers that still walk the Dag (e.g. core::criticality).
  std::vector<graph::TaskId> topo;
  std::vector<double> p_success;  ///< e^{-lambda a_i}, Dag id order
  // Sampling constants in CSR *position* order (weights live in csr):
  std::vector<double> p_success_csr;  ///< e^{-lambda a_i}
  std::vector<double> q_fail_csr;     ///< 1 - e^{-lambda a_i}
  std::vector<double> inv_log_q_csr;  ///< 1 / log1p(-p_success)
  core::RetryModel retry = core::RetryModel::Geometric;
  /// Executions cap in Geometric mode (guards pathological lambda; the
  /// truncation probability is (1-p)^{cap}, i.e. astronomically small for
  /// any sane configuration).
  int max_executions = 64;

  TrialContext(const graph::Dag& g, const core::FailureModel& model,
               core::RetryModel retry_model);
};

/// Allocation-free CSR trial kernel: samples every task (one RNG draw per
/// task, in CSR position order) and evaluates the makespan in the same
/// forward sweep. `finish` is caller scratch of size task_count(),
/// overwritten. Deterministic given `rng` state; bit-identical to the
/// reference scalar loop (sample durations, then Dag longest path) —
/// tests/test_csr.cpp enforces this.
[[nodiscard]] double run_trial_csr(const TrialContext& ctx,
                                   prob::Xoshiro256pp& rng,
                                   std::span<double> finish);

/// Per-trial observation: the makespan and the control-variate statistic
/// Z = sum_i a_i * (executions_i - 1), whose exact mean is known (see
/// mc/engine.cpp). Used for variance-reduced estimation.
struct TrialObservation {
  double makespan = 0.0;
  double control = 0.0;
};

/// As run_trial_csr, additionally accumulating the control variate. Draws
/// the identical RNG stream as run_trial_csr (same makespans).
[[nodiscard]] TrialObservation run_trial_with_control_csr(
    const TrialContext& ctx, prob::Xoshiro256pp& rng,
    std::span<double> finish);

/// Dag-facing adapter over the CSR kernel: additionally scatters the
/// sampled per-task durations into `durations` in Dag id order (for
/// consumers that re-schedule with them, e.g. sched::fault_sim).
/// Precondition: durations.size() == task_count() — size the buffer once
/// outside the trial loop; this function throws std::invalid_argument
/// instead of resizing per call.
double run_trial(const TrialContext& ctx, prob::Xoshiro256pp& rng,
                 std::vector<double>& durations);

/// As run_trial, additionally accumulating the control variate.
TrialObservation run_trial_with_control(const TrialContext& ctx,
                                        prob::Xoshiro256pp& rng,
                                        std::vector<double>& durations);

/// Exact E[Z] of the control variate under the context's retry model.
[[nodiscard]] double control_variate_mean(const TrialContext& ctx);

}  // namespace expmk::mc
