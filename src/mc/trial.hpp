// mc/trial.hpp
//
// Single Monte-Carlo trial: sample each task's duration under the silent-
// error model, then evaluate the DAG's longest path. The paper's ground
// truth (Section V-C) samples a time-to-next-failure ~ Exp(lambda) per
// attempt; an attempt fails iff that time is shorter than the task length,
// which is exactly a Bernoulli(1 - e^{-lambda a_i}) draw — so sampling the
// failure indicator directly is equivalent and faster.

#pragma once

#include <span>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/dag.hpp"
#include "prob/rng.hpp"

namespace expmk::mc {

/// Precomputed per-task sampling constants, shared across trials.
struct TrialContext {
  const graph::Dag* dag = nullptr;
  std::vector<graph::TaskId> topo;
  std::vector<double> p_success;  ///< e^{-lambda a_i}
  core::RetryModel retry = core::RetryModel::Geometric;
  /// Executions cap in Geometric mode (guards pathological lambda; the
  /// truncation probability is (1-p)^{cap}, i.e. astronomically small for
  /// any sane configuration).
  int max_executions = 64;

  TrialContext(const graph::Dag& g, const core::FailureModel& model,
               core::RetryModel retry_model);
};

/// Samples every task's duration into `durations` (resized to V) and
/// returns the resulting makespan. Deterministic given `rng` state.
double run_trial(const TrialContext& ctx, prob::Xoshiro256pp& rng,
                 std::vector<double>& durations);

/// Per-trial observation: the makespan and the control-variate statistic
/// Z = sum_i a_i * (executions_i - 1), whose exact mean is known (see
/// mc/engine.cpp). Used for variance-reduced estimation.
struct TrialObservation {
  double makespan = 0.0;
  double control = 0.0;
};

/// As run_trial, additionally accumulating the control variate.
TrialObservation run_trial_with_control(const TrialContext& ctx,
                                        prob::Xoshiro256pp& rng,
                                        std::vector<double>& durations);

/// Exact E[Z] of the control variate under the context's retry model.
[[nodiscard]] double control_variate_mean(const TrialContext& ctx);

}  // namespace expmk::mc
