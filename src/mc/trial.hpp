// mc/trial.hpp
//
// Single Monte-Carlo trial: sample each task's duration under the silent-
// error model, then evaluate the DAG's longest path. The paper's ground
// truth (Section V-C) samples a time-to-next-failure ~ Exp(lambda) per
// attempt; an attempt fails iff that time is shorter than the task length,
// which is exactly a Bernoulli(1 - e^{-lambda a_i}) draw — so sampling the
// failure indicator directly is equivalent and faster. Per-task rates
// (heterogeneous scenarios) change nothing here: the kernel reads per-task
// constant arrays either way.
//
// Hot-path layout (see DESIGN.md). The constants live in CSR position
// order:
//   q_fail      = 1 - e^{-lambda_i a_i} (fast-path threshold)
//   inv_log_q   = 1 / log1p(-p_success) (slow-path geometric inversion)
// so the geometric sampler pays ZERO transcendental calls on the (common)
// no-failure path and exactly one log() when a failure did occur, instead
// of the naive two logs per task. The CSR kernels fuse sampling with the
// longest-path sweep — one forward pass, no allocation, caller scratch.
//
// Since the Scenario redesign, TrialContext is a VIEW: built from a
// compiled scenario::Scenario it borrows the CSR and the constant arrays
// and performs no per-construction preprocessing at all. The legacy
// (Dag, FailureModel, RetryModel) constructor compiles and owns a private
// scenario, so old call sites keep working (and stay bit-identical).

#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"
#include "prob/rng.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::mc {

/// Per-task sampling constants plus the CSR view, shared across trials.
/// Copyable and cheap to copy: all heavy state is borrowed from (or
/// shared with) a scenario::Scenario, which the context must not outlive.
struct TrialContext {
  /// Legacy path: compiles (and owns) a scenario for (g, model, retry).
  /// Prefer the Scenario constructor when evaluating one cell repeatedly.
  TrialContext(const graph::Dag& g, const core::FailureModel& model,
               core::RetryModel retry_model);

  /// Zero-preprocessing view of a compiled scenario. The context (and
  /// every kernel call made with it) must not outlive `sc`.
  explicit TrialContext(const scenario::Scenario& sc);

  [[nodiscard]] const graph::Dag& dag() const noexcept { return *dag_; }
  [[nodiscard]] const graph::CsrDag& csr() const noexcept { return *csr_; }
  /// The CSR position order as a Dag topological order (== csr().order()).
  [[nodiscard]] std::span<const graph::TaskId> topo() const noexcept {
    return csr_->order();
  }
  /// e^{-lambda_i a_i} in Dag id order.
  [[nodiscard]] std::span<const double> p_success() const noexcept {
    return p_success_;
  }
  // Sampling constants in CSR *position* order (weights live in csr()):
  [[nodiscard]] std::span<const double> p_success_csr() const noexcept {
    return p_success_csr_;
  }
  [[nodiscard]] std::span<const double> q_fail_csr() const noexcept {
    return q_fail_csr_;
  }
  [[nodiscard]] std::span<const double> inv_log_q_csr() const noexcept {
    return inv_log_q_csr_;
  }
  [[nodiscard]] core::RetryModel retry() const noexcept { return retry_; }

  /// Executions cap in Geometric mode (guards pathological lambda; the
  /// truncation probability is (1-p)^{cap}, i.e. astronomically small for
  /// any sane configuration). Mutable: tests/benches tighten it.
  int max_executions = 64;

 private:
  const graph::Dag* dag_ = nullptr;
  const graph::CsrDag* csr_ = nullptr;
  std::span<const double> p_success_;
  std::span<const double> p_success_csr_;
  std::span<const double> q_fail_csr_;
  std::span<const double> inv_log_q_csr_;
  core::RetryModel retry_ = core::RetryModel::Geometric;
  /// Set only by the legacy constructor; shared so copies stay valid.
  std::shared_ptr<const scenario::Scenario> owned_;
};

/// Allocation-free CSR trial kernel: samples every task (one RNG draw per
/// task, in CSR position order) and evaluates the makespan in the same
/// forward sweep. `finish` is caller scratch of size task_count(),
/// overwritten. Deterministic given `rng` state; bit-identical to the
/// reference scalar loop (sample durations, then Dag longest path) —
/// tests/test_csr.cpp enforces this.
EXPMK_NOALLOC [[nodiscard]] double run_trial_csr(const TrialContext& ctx,
                                   prob::McRng& rng,
                                   std::span<double> finish);

/// Per-trial observation: the makespan and the control-variate statistic
/// Z = sum_i a_i * (executions_i - 1), whose exact mean is known (see
/// mc/engine.cpp). Used for variance-reduced estimation.
struct TrialObservation {
  double makespan = 0.0;
  double control = 0.0;
};

/// As run_trial_csr, additionally accumulating the control variate. Draws
/// the identical RNG stream as run_trial_csr (same makespans).
EXPMK_NOALLOC [[nodiscard]] TrialObservation run_trial_with_control_csr(
    const TrialContext& ctx, prob::McRng& rng,
    std::span<double> finish);

/// As run_trial_csr, additionally scattering the sampled per-task
/// durations into `durations` in Dag id order — the all-spans form of
/// run_trial below, for workspace-based consumers (core::criticality,
/// sched::fault_sim) that lease BOTH buffers instead of owning a vector.
/// Both spans must have size task_count(); bit-identical to run_trial.
EXPMK_NOALLOC double run_trial_scatter_csr(const TrialContext& ctx, prob::McRng& rng,
                             std::span<double> finish,
                             std::span<double> durations);

/// As run_trial_scatter_csr but writes the sampled durations in CSR
/// POSITION order (durations_pos[v] = duration of the task at position
/// v) — the layout the CSR level/longest-path kernels consume directly,
/// saving consumers like core::criticality a per-trial permutation.
/// Identical RNG stream and makespans.
EXPMK_NOALLOC double run_trial_durations_csr(const TrialContext& ctx,
                               prob::McRng& rng,
                               std::span<double> finish,
                               std::span<double> durations_pos);

/// Dag-facing adapter over the CSR kernel: additionally scatters the
/// sampled per-task durations into `durations` in Dag id order (for
/// consumers that re-schedule with them, e.g. sched::fault_sim).
/// Precondition: durations.size() == task_count() — size the buffer once
/// outside the trial loop; this function throws std::invalid_argument
/// instead of resizing per call.
double run_trial(const TrialContext& ctx, prob::McRng& rng,
                 std::vector<double>& durations);

/// As run_trial, additionally accumulating the control variate.
TrialObservation run_trial_with_control(const TrialContext& ctx,
                                        prob::McRng& rng,
                                        std::vector<double>& durations);

/// Exact E[Z] of the control variate under the context's retry model.
[[nodiscard]] double control_variate_mean(const TrialContext& ctx);

}  // namespace expmk::mc
