// mc/engine.hpp
//
// Parallel Monte-Carlo estimation of the expected makespan — the paper's
// ground truth (300,000 trials in Section V; configurable here).
//
// Reproducibility: every trial draws from its own counter-based Philox
// stream (prob::McRng) — a pure function of (seed, trial_index) with no
// per-trial state expansion — and trials are partitioned into a FIXED number of
// chunks (independent of the thread count) whose Welford accumulators are
// merged in chunk order — so the estimate is bit-identical for any thread
// count. tests/test_csr.cpp pins this contract down to the last bit.
//
// Variance reduction: an optional control variate
//   Z = sum_i a_i * (executions_i - 1)       (E[Z] known in closed form)
// is strongly positively correlated with the makespan inflation and
// typically shrinks the estimator variance substantially at low pfail;
// bench/ablation_mc quantifies the effect.

#pragma once

#include <cstdint>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/dag.hpp"
#include "mc/trial.hpp"

namespace expmk::mc {

/// Number of work chunks the Monte-Carlo engines split their trial range
/// into. Deliberately a fixed constant, NOT a function of the thread
/// count: chunk boundaries determine the accumulator merge tree, so a
/// fixed partition (plus the per-trial counter-based RNG streams) makes
/// estimates bit-identical for ANY thread count — the reproducibility
/// contract shared by run_monte_carlo and run_conditional_monte_carlo.
/// 128 chunks keep the pool load-balanced well past any realistic core
/// count. Changing this value changes merge order (NOT the sampled
/// trials), so it is an estimate-perturbing event at the float-noise
/// level; treat it like a seed change.
inline constexpr std::size_t kEngineChunks = 128;

/// Engine configuration. `trials` must be >= 1; run_monte_carlo throws
/// std::invalid_argument on 0 (a misconfiguration, not a rounding case).
struct McConfig {
  std::uint64_t trials = 300'000;  ///< the paper's trial count
  std::uint64_t seed = 0xC0FFEE;
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  core::RetryModel retry = core::RetryModel::Geometric;
  /// Use the control-variate estimator (see file comment).
  bool control_variate = false;
  /// Keep all sampled makespans (histogram/quantile post-processing).
  bool capture_samples = false;
};

/// Estimation result.
struct McResult {
  double mean = 0.0;            ///< plain (or CV-adjusted) estimate
  double variance = 0.0;        ///< sample variance of the estimator basis
  double std_error = 0.0;       ///< standard error of `mean`
  double ci95_half_width = 0.0;
  double ci99_half_width = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t trials = 0;
  double seconds = 0.0;         ///< wall-clock time spent sampling

  // Control-variate diagnostics (zero when disabled).
  double plain_mean = 0.0;           ///< estimate without the CV adjustment
  double variance_reduction = 1.0;   ///< var(plain) / var(cv)

  /// Captured samples when McConfig::capture_samples was set.
  std::vector<double> samples;
};

/// Runs the Monte-Carlo estimation (compiles a scenario internally; for
/// repeated evaluation of one cell, prefer the Scenario overload).
[[nodiscard]] McResult run_monte_carlo(const graph::Dag& g,
                                       const core::FailureModel& model,
                                       const McConfig& config = {});

/// Scenario-based entry point: zero per-call preprocessing (the trial
/// context is a view of the compiled scenario; heterogeneous per-task
/// rates are supported transparently). `config.retry` is IGNORED — the
/// retry model the scenario was compiled with governs sampling.
[[nodiscard]] McResult run_monte_carlo(const scenario::Scenario& sc,
                                       const McConfig& config = {});

}  // namespace expmk::mc
