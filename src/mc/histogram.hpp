// mc/histogram.hpp
//
// Post-processing of captured Monte-Carlo samples: fixed-width histograms,
// empirical quantiles and CDF evaluation. Used by examples/mc_convergence
// and by tests validating the sampler against exact distributions.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace expmk::mc {

/// Fixed-width histogram over [lo, hi] with `bins` buckets; finite samples
/// outside the range clamp to the boundary buckets, non-finite samples
/// (NaN, ±inf) are rejected with std::invalid_argument.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds from samples with automatic [min, max] range. Throws
  /// std::invalid_argument on an empty vector or a non-finite sample.
  static Histogram from_samples(const std::vector<double>& samples,
                                std::size_t bins);

  /// Adds one sample. Throws std::invalid_argument if `x` is not finite.
  void add(double x);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Center value of a bucket.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Fraction of samples in a bucket.
  [[nodiscard]] double density(std::size_t bin) const;

  /// Renders an ASCII bar chart (for examples).
  void print_ascii(std::ostream& os, std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Empirical p-quantile (linear interpolation of order statistics).
/// Sorts a copy; p in [0, 1].
[[nodiscard]] double empirical_quantile(std::vector<double> samples,
                                        double p);

/// Empirical CDF at x: fraction of samples <= x.
[[nodiscard]] double empirical_cdf(const std::vector<double>& samples,
                                   double x);

}  // namespace expmk::mc
