// mc/conditional.hpp
//
// Conditional (zero-failure-stratum) Monte Carlo. At the paper's realistic
// failure rates almost every trial has *no* failure at all and contributes
// exactly d(G) — pure wasted work and pure noise dilution. Conditioning
// removes it analytically:
//
//   E[M] = p0 * d(G) + (1 - p0) * E[M | at least one failure],
//   p0   = prod_i e^{-lambda a_i}  (exactly computable),
//
// and only the conditional expectation is sampled (by rejection: redraw
// the failure pattern until non-empty — each rejection costs O(V)
// Bernoullis, no longest-path evaluation). The estimator is unbiased and
// its standard error carries the (1 - p0) factor, which at pfail = 1e-4
// on the k = 12 DAGs is ~0.06: a ~250x variance reduction per trial
// (validated by tests and bench/ablation_mc).
//
// Only the TwoState retry model is supported: conditioning is on the
// failure *pattern*, which in the geometric model is not a finite object.

#pragma once

#include "core/failure_model.hpp"
#include "graph/dag.hpp"
#include "mc/engine.hpp"

namespace expmk::mc {

/// Configuration (subset of McConfig; retry model fixed to TwoState).
/// `trials` and `max_rejections_per_trial` must be >= 1
/// (std::invalid_argument otherwise).
struct ConditionalMcConfig {
  std::uint64_t trials = 100'000;  ///< conditional trials (post-rejection)
  std::uint64_t seed = 0xC0DE;
  std::size_t threads = 0;
  /// Give up on a trial's rejection loop after this many redraw attempts
  /// (guards lambda ~ 0 where failures never occur). A trial whose loop
  /// gives up is *censored* — counted in censored_trials, contributing
  /// nothing to the conditional statistics (fabricating a sample would
  /// bias the conditional mean toward d(G)); the analytic p0 term carries
  /// essentially the whole estimate in that regime anyway.
  std::uint64_t max_rejections_per_trial = 1'000'000;
};

/// Estimation result.
struct ConditionalMcResult {
  double mean = 0.0;       ///< p0 * d(G) + (1-p0) * conditional mean
  double std_error = 0.0;  ///< (1-p0) * conditional standard error
  double ci95_half_width = 0.0;
  double p_zero_failures = 0.0;  ///< exact p0
  double critical_path = 0.0;    ///< d(G)
  double conditional_mean = 0.0; ///< E[M | >=1 failure] estimate
  std::uint64_t trials = 0;      ///< accepted (uncensored) trials
  /// Trials whose rejection loop hit max_rejections_per_trial without
  /// drawing a failure; excluded from the conditional statistics.
  std::uint64_t censored_trials = 0;
  double avg_rejections = 0.0;   ///< redraws per accepted trial
  double seconds = 0.0;
};

/// Runs the conditional estimator (TwoState model; compiles a scenario
/// internally — prefer the Scenario overload for repeated evaluation).
[[nodiscard]] ConditionalMcResult run_conditional_monte_carlo(
    const graph::Dag& g, const core::FailureModel& model,
    const ConditionalMcConfig& config = {});

/// Scenario-based entry point: reuses the compiled CSR view and success
/// probabilities (zero per-call preprocessing); heterogeneous per-task
/// rates are supported transparently — p0 and the rejection sampler are
/// per-task either way. The scenario's retry model must be TwoState
/// (std::invalid_argument otherwise; conditioning on the failure pattern
/// is not a finite object under the geometric model).
[[nodiscard]] ConditionalMcResult run_conditional_monte_carlo(
    const scenario::Scenario& sc, const ConditionalMcConfig& config = {});

}  // namespace expmk::mc
