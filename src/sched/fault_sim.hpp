// sched/fault_sim.hpp
//
// Fault-injected schedule simulation: runs the list scheduler with task
// durations sampled from the silent-error model (every failed attempt is
// fully re-executed, verification at task end). Used to compare priority
// schemes — classical bottom level vs the paper's failure-aware bottom
// level — under actual failures (bench/ablation_scheduling).

#pragma once

#include <cstdint>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "mc/trial.hpp"
#include "prob/statistics.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/priorities.hpp"

namespace expmk::sched {

/// Configuration of a fault-injection campaign.
struct FaultSimConfig {
  std::uint64_t runs = 1000;
  std::uint64_t seed = 0xFEED;
  core::RetryModel retry = core::RetryModel::Geometric;
};

/// Aggregate outcome over the campaign.
struct FaultSimResult {
  prob::RunningStats makespan;  ///< distribution of achieved makespans
  double failure_free_makespan = 0.0;  ///< same priorities, no faults
};

/// Runs `config.runs` fault-injected executions of the list schedule with
/// the given priority vector on `machine`.
[[nodiscard]] FaultSimResult simulate_with_faults(
    const graph::Dag& g, std::span<const double> priority,
    const Machine& machine, const core::FailureModel& model,
    const FaultSimConfig& config = {});

/// Workspace kernel: the per-run duration and trial-sweep buffers are
/// leased from `ws`. (The list scheduler itself still builds its Schedule
/// per run — the simulation is a Monte-Carlo campaign, not one of the
/// allocation-pinned analytic paths.)
[[nodiscard]] FaultSimResult simulate_with_faults(
    const scenario::Scenario& sc, std::span<const double> priority,
    const Machine& machine, const FaultSimConfig& config,
    exp::Workspace& ws);

/// Scenario-based entry point (no CSR rebuild; heterogeneous per-task
/// rates supported). `config.retry` is ignored — the scenario's retry
/// model governs sampling. Lease-a-temporary adapter over the workspace
/// kernel.
[[nodiscard]] FaultSimResult simulate_with_faults(
    const scenario::Scenario& sc, std::span<const double> priority,
    const Machine& machine, const FaultSimConfig& config = {});

}  // namespace expmk::sched
