// sched/machine.hpp
//
// Platform model for the list-scheduling substrate: P processors, each
// with a relative speed (1.0 = reference). Identical machines reproduce
// classical CP-scheduling; heterogeneous speeds exercise the HEFT-style
// earliest-finish-time placement.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace expmk::sched {

/// A set of processors with relative speeds.
class Machine {
 public:
  /// `p` identical unit-speed processors.
  explicit Machine(std::size_t p) : speeds_(p, 1.0) {
    if (p == 0) throw std::invalid_argument("Machine: need >= 1 processor");
  }

  /// Heterogeneous platform from explicit speeds (> 0 each).
  explicit Machine(std::vector<double> speeds) : speeds_(std::move(speeds)) {
    if (speeds_.empty()) {
      throw std::invalid_argument("Machine: need >= 1 processor");
    }
    for (const double s : speeds_) {
      if (s <= 0.0) throw std::invalid_argument("Machine: speeds must be > 0");
    }
  }

  [[nodiscard]] std::size_t processors() const noexcept {
    return speeds_.size();
  }
  [[nodiscard]] double speed(std::size_t p) const { return speeds_.at(p); }
  [[nodiscard]] bool homogeneous() const noexcept {
    for (const double s : speeds_) {
      if (s != speeds_.front()) return false;
    }
    return true;
  }

  /// Execution time of a task of weight `w` on processor `p`.
  [[nodiscard]] double execution_time(double w, std::size_t p) const {
    return w / speed(p);
  }

 private:
  std::vector<double> speeds_;
};

}  // namespace expmk::sched
