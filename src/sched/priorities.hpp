// sched/priorities.hpp
//
// Task priority vectors for list scheduling. The paper's motivation: CP
// scheduling ranks tasks by bottom level; under silent errors the bottom
// level should be the *expected* one — which is exactly what the
// first-order machinery provides (core/bottom_levels.hpp).

#pragma once

#include <vector>

#include "core/failure_model.hpp"
#include "graph/dag.hpp"

namespace expmk::sched {

/// Available priority schemes.
enum class PriorityKind {
  /// Classical CP-scheduling: failure-free bottom level.
  BottomLevel,
  /// Failure-aware CP: first-order expected bottom level (the paper's
  /// proposed use of its approximation).
  FailureAwareBottomLevel,
  /// Upward rank alias used by HEFT on homogeneous platforms — identical
  /// to BottomLevel here because task costs do not vary per processor.
  UpwardRank,
};

/// Computes the priority of every task (higher = schedule earlier).
[[nodiscard]] std::vector<double> priorities(const graph::Dag& g,
                                             PriorityKind kind,
                                             const core::FailureModel& model);

}  // namespace expmk::sched
