// sched/list_scheduler.hpp
//
// Event-driven list scheduling on a bounded set of processors. Ready tasks
// are kept in a priority queue (priority vector supplied by the caller);
// when a processor frees up, the highest-priority ready task starts on the
// earliest-available processor (EFT placement, which on heterogeneous
// speeds reproduces HEFT's processor-selection rule without insertion).
//
// The scheduler takes the *actual durations* as an explicit vector so the
// same machinery serves both deterministic scheduling (durations = task
// weights) and fault-injected simulation (durations = sampled execution
// counts x weights; see fault_sim.hpp).

#pragma once

#include <span>
#include <vector>

#include "graph/dag.hpp"
#include "sched/machine.hpp"

namespace expmk::sched {

/// One scheduled task instance.
struct Placement {
  double start = 0.0;
  double finish = 0.0;
  std::uint32_t processor = 0;
};

/// A complete schedule.
struct Schedule {
  std::vector<Placement> placements;  ///< indexed by TaskId
  double makespan = 0.0;
};

/// Builds the list schedule. `durations[i]` is the wall-clock work of task
/// i at unit speed; on processor p it runs for durations[i] / speed(p).
/// `priority[i]` ranks ready tasks (higher first; ties by smaller id).
[[nodiscard]] Schedule list_schedule(const graph::Dag& g,
                                     std::span<const double> durations,
                                     std::span<const double> priority,
                                     const Machine& machine);

/// Convenience: durations = task weights (failure-free schedule).
[[nodiscard]] Schedule list_schedule(const graph::Dag& g,
                                     std::span<const double> priority,
                                     const Machine& machine);

/// Checks that `s` respects precedence constraints, processor exclusivity
/// and per-task durations; returns an empty string when valid, else a
/// description of the first violation (test helper).
[[nodiscard]] std::string validate_schedule(const graph::Dag& g,
                                            std::span<const double> durations,
                                            const Machine& machine,
                                            const Schedule& s);

}  // namespace expmk::sched
