#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>

#include "graph/topological.hpp"

namespace expmk::sched {

namespace {

/// Max-heap entry for the ready queue.
struct ReadyTask {
  double priority;
  graph::TaskId id;
  bool operator<(const ReadyTask& other) const {
    if (priority != other.priority) return priority < other.priority;
    return id > other.id;  // smaller id wins ties
  }
};

}  // namespace

Schedule list_schedule(const graph::Dag& g, std::span<const double> durations,
                       std::span<const double> priority,
                       const Machine& machine) {
  const std::size_t n = g.task_count();
  if (durations.size() != n || priority.size() != n) {
    throw std::invalid_argument(
        "list_schedule: durations/priority size mismatch");
  }

  Schedule schedule;
  schedule.placements.assign(n, {});

  std::vector<std::size_t> remaining(n);
  std::priority_queue<ReadyTask> ready;
  for (graph::TaskId v = 0; v < n; ++v) {
    remaining[v] = g.in_degree(v);
    if (remaining[v] == 0) ready.push({priority[v], v});
  }

  // ready_time[v]: max finish time over predecessors (data availability).
  std::vector<double> ready_time(n, 0.0);
  std::vector<double> proc_free(machine.processors(), 0.0);

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const auto [prio, v] = ready.top();
    ready.pop();
    (void)prio;

    // EFT placement: earliest finish over all processors (start = max of
    // processor availability and data readiness).
    std::size_t best_p = 0;
    double best_finish = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    for (std::size_t p = 0; p < machine.processors(); ++p) {
      const double start = std::max(proc_free[p], ready_time[v]);
      const double finish = start + machine.execution_time(durations[v], p);
      if (finish < best_finish) {
        best_finish = finish;
        best_start = start;
        best_p = p;
      }
    }
    schedule.placements[v] = {best_start, best_finish,
                              static_cast<std::uint32_t>(best_p)};
    proc_free[best_p] = best_finish;
    schedule.makespan = std::max(schedule.makespan, best_finish);
    ++scheduled;

    for (const graph::TaskId w : g.successors(v)) {
      ready_time[w] = std::max(ready_time[w], best_finish);
      if (--remaining[w] == 0) ready.push({priority[w], w});
    }
  }
  if (scheduled != n) {
    throw std::invalid_argument("list_schedule: graph has a cycle");
  }
  return schedule;
}

Schedule list_schedule(const graph::Dag& g, std::span<const double> priority,
                       const Machine& machine) {
  return list_schedule(g, g.weights(), priority, machine);
}

std::string validate_schedule(const graph::Dag& g,
                              std::span<const double> durations,
                              const Machine& machine, const Schedule& s) {
  const std::size_t n = g.task_count();
  if (s.placements.size() != n) return "placement count mismatch";

  for (graph::TaskId v = 0; v < n; ++v) {
    const Placement& pl = s.placements[v];
    if (pl.processor >= machine.processors()) {
      return "task " + std::to_string(v) + " on invalid processor";
    }
    const double expect =
        machine.execution_time(durations[v], pl.processor);
    if (std::abs((pl.finish - pl.start) - expect) > 1e-9) {
      return "task " + std::to_string(v) + " has wrong duration";
    }
    for (const graph::TaskId u : g.predecessors(v)) {
      if (s.placements[u].finish > pl.start + 1e-9) {
        return "task " + std::to_string(v) + " starts before predecessor " +
               std::to_string(u) + " finishes";
      }
    }
  }
  // Processor exclusivity: sort intervals per processor.
  std::vector<std::vector<graph::TaskId>> per_proc(machine.processors());
  for (graph::TaskId v = 0; v < n; ++v) {
    per_proc[s.placements[v].processor].push_back(v);
  }
  for (auto& tasks : per_proc) {
    std::sort(tasks.begin(), tasks.end(), [&](graph::TaskId a, graph::TaskId b) {
      return s.placements[a].start < s.placements[b].start;
    });
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      if (s.placements[tasks[i - 1]].finish >
          s.placements[tasks[i]].start + 1e-9) {
        return "overlap on processor " +
               std::to_string(s.placements[tasks[i]].processor);
      }
    }
  }
  return {};
}

}  // namespace expmk::sched
