#include "sched/heft.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "graph/topological.hpp"

namespace expmk::sched {

namespace {

/// Occupied interval on a processor, kept sorted by start time.
struct Busy {
  double start;
  double finish;
};

/// Earliest start >= ready on a processor with the given busy list, for a
/// job of length `len` (insertion policy: scan gaps).
double earliest_slot(const std::vector<Busy>& busy, double ready,
                     double len) {
  double t = ready;
  for (const Busy& b : busy) {
    if (t + len <= b.start + 1e-15) return t;  // fits before this interval
    t = std::max(t, b.finish);
  }
  return t;
}

void insert_slot(std::vector<Busy>& busy, double start, double finish) {
  const Busy slot{start, finish};
  const auto it = std::lower_bound(
      busy.begin(), busy.end(), slot,
      [](const Busy& a, const Busy& b) { return a.start < b.start; });
  busy.insert(it, slot);
}

}  // namespace

Schedule heft_schedule(const graph::Dag& g, std::span<const double> durations,
                       std::span<const double> priority,
                       const Machine& machine) {
  const std::size_t n = g.task_count();
  if (durations.size() != n || priority.size() != n) {
    throw std::invalid_argument(
        "heft_schedule: durations/priority size mismatch");
  }

  // Process tasks by descending priority; break ties topologically so the
  // order is precedence-compatible even with zero-weight tasks.
  const auto topo = graph::topological_order(g);
  const auto rank = graph::ranks_of(topo);
  std::vector<graph::TaskId> order(n);
  for (graph::TaskId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](graph::TaskId a, graph::TaskId b) {
              if (priority[a] != priority[b]) {
                return priority[a] > priority[b];
              }
              return rank[a] < rank[b];
            });
  // Safety: verify precedence compatibility (priorities should decrease
  // along edges; bottom levels do).
  {
    std::vector<std::uint32_t> pos(n);
    for (std::uint32_t i = 0; i < n; ++i) pos[order[i]] = i;
    for (graph::TaskId u = 0; u < n; ++u) {
      for (const graph::TaskId v : g.successors(u)) {
        if (pos[u] >= pos[v]) {
          throw std::invalid_argument(
              "heft_schedule: priority order violates precedence (use a "
              "bottom-level-like priority)");
        }
      }
    }
  }

  Schedule schedule;
  schedule.placements.assign(n, {});
  std::vector<std::vector<Busy>> busy(machine.processors());
  std::vector<double> finish(n, 0.0);

  for (const graph::TaskId v : order) {
    double ready = 0.0;
    for (const graph::TaskId u : g.predecessors(v)) {
      ready = std::max(ready, finish[u]);
    }
    std::size_t best_p = 0;
    double best_start = 0.0;
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < machine.processors(); ++p) {
      const double len = machine.execution_time(durations[v], p);
      const double start = earliest_slot(busy[p], ready, len);
      if (start + len < best_finish) {
        best_finish = start + len;
        best_start = start;
        best_p = p;
      }
    }
    insert_slot(busy[best_p], best_start, best_finish);
    finish[v] = best_finish;
    schedule.placements[v] = {best_start, best_finish,
                              static_cast<std::uint32_t>(best_p)};
    schedule.makespan = std::max(schedule.makespan, best_finish);
  }
  return schedule;
}

Schedule heft_schedule(const graph::Dag& g, std::span<const double> priority,
                       const Machine& machine) {
  return heft_schedule(g, g.weights(), priority, machine);
}

}  // namespace expmk::sched
