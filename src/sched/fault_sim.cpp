#include "sched/fault_sim.hpp"

#include <vector>

namespace expmk::sched {

namespace {

FaultSimResult fault_sim_impl(const graph::Dag& g,
                              std::span<const double> priority,
                              const Machine& machine,
                              const mc::TrialContext& ctx,
                              const FaultSimConfig& config,
                              exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  FaultSimResult result;
  result.failure_free_makespan =
      list_schedule(g, g.weights(), priority, machine).makespan;

  // Leased once per campaign; the trial kernel asserts sizes instead of
  // resizing per run.
  const std::span<double> durations = ws.doubles(g.task_count());
  const std::span<double> finish = ws.doubles(g.task_count());
  for (std::uint64_t r = 0; r < config.runs; ++r) {
    prob::McRng rng(config.seed, r);
    // Sample per-task total execution time (attempts x weight), then
    // schedule with those durations.
    (void)mc::run_trial_scatter_csr(ctx, rng, finish, durations);
    const Schedule s = list_schedule(g, durations, priority, machine);
    result.makespan.push(s.makespan);
  }
  return result;
}

}  // namespace

FaultSimResult simulate_with_faults(const graph::Dag& g,
                                    std::span<const double> priority,
                                    const Machine& machine,
                                    const core::FailureModel& model,
                                    const FaultSimConfig& config) {
  const mc::TrialContext ctx(g, model, config.retry);
  exp::Workspace ws;
  return fault_sim_impl(g, priority, machine, ctx, config, ws);
}

FaultSimResult simulate_with_faults(const scenario::Scenario& sc,
                                    std::span<const double> priority,
                                    const Machine& machine,
                                    const FaultSimConfig& config,
                                    exp::Workspace& ws) {
  return fault_sim_impl(sc.dag(), priority, machine, mc::TrialContext(sc),
                        config, ws);
}

FaultSimResult simulate_with_faults(const scenario::Scenario& sc,
                                    std::span<const double> priority,
                                    const Machine& machine,
                                    const FaultSimConfig& config) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return simulate_with_faults(sc, priority, machine, config, ws);
}

}  // namespace expmk::sched
