#include "sched/fault_sim.hpp"

#include <vector>

namespace expmk::sched {

namespace {

FaultSimResult fault_sim_impl(const graph::Dag& g,
                              std::span<const double> priority,
                              const Machine& machine,
                              const mc::TrialContext& ctx,
                              const FaultSimConfig& config) {
  FaultSimResult result;
  result.failure_free_makespan =
      list_schedule(g, g.weights(), priority, machine).makespan;

  // Sized once; run_trial asserts the size instead of resizing per run.
  std::vector<double> durations(g.task_count());
  for (std::uint64_t r = 0; r < config.runs; ++r) {
    prob::Xoshiro256pp rng(config.seed, r);
    // Sample per-task total execution time (attempts x weight), then
    // schedule with those durations.
    (void)mc::run_trial(ctx, rng, durations);
    const Schedule s = list_schedule(g, durations, priority, machine);
    result.makespan.push(s.makespan);
  }
  return result;
}

}  // namespace

FaultSimResult simulate_with_faults(const graph::Dag& g,
                                    std::span<const double> priority,
                                    const Machine& machine,
                                    const core::FailureModel& model,
                                    const FaultSimConfig& config) {
  const mc::TrialContext ctx(g, model, config.retry);
  return fault_sim_impl(g, priority, machine, ctx, config);
}

FaultSimResult simulate_with_faults(const scenario::Scenario& sc,
                                    std::span<const double> priority,
                                    const Machine& machine,
                                    const FaultSimConfig& config) {
  return fault_sim_impl(sc.dag(), priority, machine, mc::TrialContext(sc),
                        config);
}

}  // namespace expmk::sched
