// sched/machine.cpp — Machine is header-only; this TU anchors the header
// so missing-include errors surface once, in one place.

#include "sched/machine.hpp"
