// sched/heft.hpp
//
// HEFT-style static scheduling (Topcuoglu, Hariri, Wu 2002 — the paper's
// reference [7]): tasks are processed in descending upward-rank order
// (here: bottom level, or the failure-aware variant) and placed on the
// processor minimizing the earliest finish time with **insertion** — a
// task may slide into an idle gap between two already-scheduled tasks,
// which the plain list scheduler (list_scheduler.hpp) never does.

#pragma once

#include <span>

#include "sched/list_scheduler.hpp"

namespace expmk::sched {

/// Insertion-based HEFT schedule. `durations` and `priority` as in
/// list_schedule(); ties in priority are broken topologically so the
/// processing order is always precedence-compatible.
[[nodiscard]] Schedule heft_schedule(const graph::Dag& g,
                                     std::span<const double> durations,
                                     std::span<const double> priority,
                                     const Machine& machine);

/// Convenience overload: durations = task weights.
[[nodiscard]] Schedule heft_schedule(const graph::Dag& g,
                                     std::span<const double> priority,
                                     const Machine& machine);

}  // namespace expmk::sched
