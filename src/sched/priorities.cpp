#include "sched/priorities.hpp"

#include "core/bottom_levels.hpp"
#include "graph/levels.hpp"
#include "graph/topological.hpp"

namespace expmk::sched {

std::vector<double> priorities(const graph::Dag& g, PriorityKind kind,
                               const core::FailureModel& model) {
  const auto topo = graph::topological_order(g);
  switch (kind) {
    case PriorityKind::BottomLevel:
    case PriorityKind::UpwardRank:
      return graph::bottom_levels(g, g.weights(), topo);
    case PriorityKind::FailureAwareBottomLevel:
      return core::failure_aware_bottom_levels(g, model, topo);
  }
  return graph::bottom_levels(g, g.weights(), topo);
}

}  // namespace expmk::sched
