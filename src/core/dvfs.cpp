#include "core/dvfs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/first_order.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

double DvfsModel::lambda(double s) const {
  if (!(smax > smin)) {
    throw std::invalid_argument("DvfsModel: need smin < smax");
  }
  // Tolerate float accumulation from speed-sweep loops (1 ulp-ish), but
  // reject genuinely out-of-range speeds.
  const double slack = 1e-9 * (smax - smin);
  if (s < smin - slack || s > smax + slack) {
    throw std::invalid_argument("DvfsModel: speed outside [smin, smax]");
  }
  s = std::clamp(s, smin, smax);
  if (lambda0 < 0.0 || sensitivity < 0.0) {
    throw std::invalid_argument("DvfsModel: negative lambda0/sensitivity");
  }
  return lambda0 * std::pow(10.0, sensitivity * (smax - s) / (smax - smin));
}

FailureModel DvfsModel::failure_model(double s) const {
  return FailureModel{lambda(s)};
}

std::vector<DvfsPoint> dvfs_sweep(const graph::Dag& g, const DvfsModel& model,
                                  const std::vector<double>& speeds) {
  if (speeds.empty()) {
    throw std::invalid_argument("dvfs_sweep: no speeds given");
  }
  std::vector<DvfsPoint> out;
  out.reserve(speeds.size());

  // Scaled copy reused across speeds.
  graph::Dag scaled = g;
  const auto topo = graph::topological_order(g);

  for (const double s : speeds) {
    const double lam = model.lambda(s);
    for (graph::TaskId i = 0; i < g.task_count(); ++i) {
      scaled.set_weight(i, g.weight(i) / s);
    }
    const auto fo = first_order(scaled, FailureModel{lam}, topo);

    DvfsPoint p;
    p.speed = s;
    p.lambda = lam;
    p.failure_free_makespan = fo.critical_path;
    p.expected_makespan = fo.expected_makespan();

    // Dynamic energy = power * time with power ~ s^3 and time the
    // *expected* total busy time at speed s (re-executed work pays again):
    // E(s) ~ s^3 * sum_i E[duration_i at speed s]  (= s^2 per unit work).
    // Normalized so full speed = 1.
    const FailureModel fm{lam};
    double busy = 0.0;
    for (graph::TaskId i = 0; i < g.task_count(); ++i) {
      busy += fm.expected_duration(g.weight(i) / s, RetryModel::TwoState);
    }
    const double ratio = s / model.smax;
    const double energy = ratio * ratio * ratio * busy;
    const FailureModel full{model.lambda0};
    double full_busy = 0.0;
    for (graph::TaskId i = 0; i < g.task_count(); ++i) {
      full_busy += full.expected_duration(g.weight(i) / model.smax,
                                          RetryModel::TwoState);
    }
    p.relative_energy = energy / full_busy;
    out.push_back(p);
  }
  return out;
}

double best_speed_for_makespan(const graph::Dag& g, const DvfsModel& model,
                               const std::vector<double>& speeds) {
  const auto sweep = dvfs_sweep(g, model, speeds);
  double best_speed = sweep.front().speed;
  double best = sweep.front().expected_makespan;
  for (const DvfsPoint& p : sweep) {
    if (p.expected_makespan < best) {
      best = p.expected_makespan;
      best_speed = p.speed;
    }
  }
  return best_speed;
}

}  // namespace expmk::core
