#include "core/bottom_levels.hpp"

#include <algorithm>
#include <limits>

#include "graph/levels.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

namespace {

double level_for(const graph::Dag& g, const FailureModel& model,
                 graph::TaskId task, std::span<const graph::TaskId> topo,
                 const std::vector<double>& bottom) {
  const auto& w = g.weights();
  const auto lp = graph::longest_from(g, task, w, topo);
  const double base = bottom[task];
  double correction = 0.0;
  for (graph::TaskId j = 0; j < g.task_count(); ++j) {
    if (lp[j] == -std::numeric_limits<double>::infinity()) continue;
    correction += w[j] * std::max(0.0, lp[j] + bottom[j] - base);
  }
  return base + model.lambda * correction;
}

}  // namespace

std::vector<double> failure_aware_bottom_levels(
    const graph::Dag& g, const FailureModel& model,
    std::span<const graph::TaskId> topo) {
  const auto bottom = graph::bottom_levels(g, g.weights(), topo);
  std::vector<double> out(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    out[i] = level_for(g, model, i, topo, bottom);
  }
  return out;
}

std::vector<double> failure_aware_bottom_levels(const graph::Dag& g,
                                                const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  return failure_aware_bottom_levels(g, model, topo);
}

double failure_aware_bottom_level(const graph::Dag& g,
                                  const FailureModel& model,
                                  graph::TaskId task,
                                  std::span<const graph::TaskId> topo) {
  const auto bottom = graph::bottom_levels(g, g.weights(), topo);
  return level_for(g, model, task, topo, bottom);
}

}  // namespace expmk::core
