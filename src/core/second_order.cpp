#include "core/second_order.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/csr.hpp"

namespace expmk::core {

SecondOrderResult second_order(const graph::CsrDag& csr,
                               const FailureModel& model,
                               RetryModel model_kind) {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const double lambda = model.lambda;
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();

  // Levels over the renumbered positions (one forward, one backward pass).
  std::vector<double> top(n), bottom(n);
  const double d = graph::compute_levels(csr, w, top, bottom);

  double A = 0.0;
  for (const double a : w) A += a;

  // d(G_i) for every i, plus the first-order correction for reporting.
  std::vector<double> d_single(n);
  double fo_correction = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double thr2 = top[i] + bottom[i] + w[i];
    d_single[i] = std::max(d, thr2);
    fo_correction += w[i] * (d_single[i] - d);
  }

  // Pair terms sum_{i<j} a_i a_j d(G_ij), streaming one single-source
  // longest path per i into a reused scratch buffer. Because positions
  // are topologically renumbered, j at a later position can NEVER reach i
  // — so one forward suffix sweep per i covers every unordered pair, and
  // the reverse patch-up sweep the Dag-order implementation needed
  // disappears entirely (half the work, zero allocations in the loop).
  std::vector<double> dist(n);
  double pair_sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    longest_from(csr, i, w, dist);  // fills dist[i..n)
    for (std::uint32_t j = i + 1; j < n; ++j) {
      double dij = std::max(d_single[i], d_single[j]);
      if (dist[j] != kNegInf) {
        // Best path through both i and j (j reachable from i), with both
        // weights doubled: top(i) + [lp(i,j) + a_i + a_j] + tail(j).
        const double cross =
            top[i] + dist[j] + w[i] + w[j] + (bottom[j] - w[j]);
        dij = std::max(dij, cross);
      }
      pair_sum += w[i] * w[j] * dij;
    }
  }

  // Assemble per the expansion in the header comment.
  double e2 = d * (1.0 - lambda * A + lambda * lambda * A * A / 2.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double a = w[i];
    double coeff1;  // coefficient of lambda^2 on d(G_i)
    switch (model_kind) {
      case RetryModel::TwoState:
        coeff1 = a * (a / 2.0 - A);
        break;
      case RetryModel::Geometric:
        coeff1 = -a * (A + a / 2.0);
        break;
      default:
        coeff1 = 0.0;
    }
    e2 += (lambda * a + lambda * lambda * coeff1) * d_single[i];
  }
  e2 += lambda * lambda * pair_sum;

  if (model_kind == RetryModel::Geometric) {
    // Triple execution of a single task: weight 3 a_i with prob
    // (lambda a_i)^2 + O(lambda^3).
    double triple = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const double thr3 = top[i] + bottom[i] + 2.0 * w[i];
      triple += w[i] * w[i] * std::max(d, thr3);
    }
    e2 += lambda * lambda * triple;
  }

  SecondOrderResult out;
  out.critical_path = d;
  out.first_order = d + lambda * fo_correction;
  out.expected_makespan = e2;
  return out;
}

SecondOrderResult second_order(const scenario::Scenario& sc) {
  // Uniform scenarios run the pre-Scenario code path verbatim (bit-
  // identical results); heterogeneous rates use the generalized expansion
  // from the header comment with l_i = lambda_i a_i.
  if (!sc.heterogeneous()) {
    return second_order(sc.csr(), sc.uniform_model(), sc.retry());
  }
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const RetryModel model_kind = sc.retry();
  const graph::CsrDag& csr = sc.csr();
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  const std::span<const double> rates = sc.rates_csr();

  std::vector<double> top(n), bottom(n);
  const double d = graph::compute_levels(csr, w, top, bottom);

  // l_i = lambda_i a_i: the per-task first-order failure mass. L replaces
  // the uniform lambda * A everywhere.
  std::vector<double> l(n);
  double L = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    l[i] = rates[i] * w[i];
    L += l[i];
  }

  std::vector<double> d_single(n);
  double fo_correction = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double thr2 = top[i] + bottom[i] + w[i];
    d_single[i] = std::max(d, thr2);
    fo_correction += l[i] * (d_single[i] - d);
  }

  // Pair terms sum_{i<j} l_i l_j d(G_ij); same forward-only streaming
  // sweep as the uniform implementation (see comments there).
  std::vector<double> dist(n);
  double pair_sum = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    longest_from(csr, i, w, dist);  // fills dist[i..n)
    for (std::uint32_t j = i + 1; j < n; ++j) {
      double dij = std::max(d_single[i], d_single[j]);
      if (dist[j] != kNegInf) {
        const double cross =
            top[i] + dist[j] + w[i] + w[j] + (bottom[j] - w[j]);
        dij = std::max(dij, cross);
      }
      pair_sum += l[i] * l[j] * dij;
    }
  }

  double e2 = d * (1.0 - L + L * L / 2.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    double coeff1;  // second-order coefficient on d(G_i)
    switch (model_kind) {
      case RetryModel::TwoState:
        coeff1 = l[i] * (l[i] / 2.0 - L);
        break;
      case RetryModel::Geometric:
        coeff1 = -l[i] * (L + l[i] / 2.0);
        break;
      default:
        coeff1 = 0.0;
    }
    e2 += (l[i] + coeff1) * d_single[i];
  }
  e2 += pair_sum;

  if (model_kind == RetryModel::Geometric) {
    // Triple execution of a single task: weight 3 a_i with prob
    // (lambda_i a_i)^2 + O(lambda^3).
    double triple = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const double thr3 = top[i] + bottom[i] + 2.0 * w[i];
      triple += l[i] * l[i] * std::max(d, thr3);
    }
    e2 += triple;
  }

  SecondOrderResult out;
  out.critical_path = d;
  out.first_order = d + fo_correction;
  out.expected_makespan = e2;
  return out;
}

SecondOrderResult second_order(const graph::Dag& g, const FailureModel& model,
                               RetryModel model_kind,
                               std::span<const graph::TaskId> topo) {
  // The CSR build derives its own order; still validate the argument so a
  // caller passing an order from a different graph keeps its error signal.
  if (topo.size() != g.task_count()) {
    throw std::invalid_argument(
        "second_order: topo size mismatch with task count");
  }
  return second_order(graph::CsrDag(g), model, model_kind);
}

SecondOrderResult second_order(const graph::Dag& g, const FailureModel& model,
                               RetryModel model_kind) {
  return second_order(graph::CsrDag(g), model, model_kind);
}

}  // namespace expmk::core
