#include "core/second_order.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "exp/level_parallel.hpp"
#include "graph/csr.hpp"
#include "graph/level_sets.hpp"

namespace expmk::core {

namespace {

/// Pair-sweep block width: sources processed per longest_from_block edge
/// pass. 8 lanes = one 64-byte cache line of doubles per vertex in the
/// lane matrix, and enough independent arithmetic for the compiler to
/// vectorize the inner pair loop.
constexpr std::uint32_t kSecondOrderBlock = 8;

/// O(V) serial prefix shared verbatim by the serial and level-parallel
/// drivers: per-task failure mass l_i (het), its sum L / the uniform sum
/// A, the single-failure makespans d(G_i), and the first-order correction.
struct SoPrefix {
  double A = 0.0;              // uniform: sum a_i
  double L = 0.0;              // heterogeneous: sum l_i
  double fo_correction = 0.0;  // first-order correction for reporting
};

EXPMK_NOALLOC SoPrefix so_prefix(const graph::CsrDag& csr, bool het, double d,
                                 std::span<const double> rates_csr,
                                 std::span<const double> top,
                                 std::span<const double> bottom,
                                 std::span<double> d_single,
                                 std::span<double> l) {
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  SoPrefix out;
  // l_i = lambda_i a_i: the per-task first-order failure mass. L replaces
  // the uniform lambda * A everywhere in the heterogeneous expansion.
  if (het) {
    for (std::uint32_t i = 0; i < n; ++i) {
      l[i] = rates_csr[i] * w[i];
      out.L += l[i];
    }
  } else {
    for (const double a : w) out.A += a;
  }
  // d(G_i) for every i, plus the first-order correction for reporting.
  for (std::uint32_t i = 0; i < n; ++i) {
    const double thr2 = top[i] + bottom[i] + w[i];
    d_single[i] = std::max(d, thr2);
    out.fo_correction += (het ? l[i] : w[i]) * (d_single[i] - d);
  }
  return out;
}

/// One pair-sweep block: sum_{j>i} m_i m_j d(G_ij) for the
/// kSecondOrderBlock (or fewer, at the end) consecutive sources starting
/// at i0, each lane's partial into acc[lane]. One graph::longest_from_block
/// edge pass serves the whole block (edge traffic divided by the block
/// width), and the inner j-loop walks the vertex-major lane matrix — one
/// cache line per vertex covers every lane, and the per-lane body is
/// branch-free, independent arithmetic the compiler can vectorize across
/// lanes. Because positions are topologically renumbered, j at a later
/// position can NEVER reach i, so the forward suffix sweep covers every
/// unordered pair.
///
/// Numerics: each lane accumulates its own partial sum in the exact
/// per-source j-ascending order of the one-source-at-a-time sweep; the
/// caller then folds the partials into pair_sum in source order. That
/// re-associates the GLOBAL sum only (one fixed, documented order — part
/// of the same one-time re-baseline as the kernel layer's stable merge).
/// The unreachable-pair guard is arithmetic here: dist -inf propagates
/// through the cross term and loses the max, bit-identically to the
/// scalar `!= -inf` branch for the finite levels/weights at hand.
///
/// Blocks touch only (read-only inputs, their own dist scratch, their own
/// acc) — which is what lets the level-parallel driver run them on any
/// worker in any order with bit-identical results.
EXPMK_NOALLOC void so_block(const graph::CsrDag& csr, bool het,
                            std::span<const double> l,
                            std::span<const double> top,
                            std::span<const double> bottom,
                            std::span<const double> d_single,
                            std::uint32_t i0, std::uint32_t nb,
                            std::span<double> dist,
                            double acc[kSecondOrderBlock]) {
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  longest_from_block(csr, i0, nb, w, dist);
  double m_i[kSecondOrderBlock];
  for (std::uint32_t ln = 0; ln < nb; ++ln) {
    m_i[ln] = het ? l[i0 + ln] : w[i0 + ln];
  }
  // Head: j inside the block — only lanes with source < j are live.
  const std::uint32_t head_end =
      std::min<std::uint32_t>(i0 + nb, static_cast<std::uint32_t>(n));
  for (std::uint32_t j = i0 + 1; j < head_end; ++j) {
    for (std::uint32_t ln = 0; ln < j - i0; ++ln) {
      const std::uint32_t i = i0 + ln;
      double dij = std::max(d_single[i], d_single[j]);
      const double cross =
          top[i] + dist[j * nb + ln] + w[i] + w[j] + (bottom[j] - w[j]);
      dij = std::max(dij, cross);
      acc[ln] += (m_i[ln] * (het ? l[j] : w[j])) * dij;
    }
  }
  // Tail: every lane is live; no masks, no branches. Per-lane constants
  // are gathered into dense block arrays so the lane loop is pure
  // contiguous elementwise arithmetic; the full-width case runs with a
  // compile-time lane count so it vectorizes.
  double ds_i[kSecondOrderBlock];
  double top_i[kSecondOrderBlock];
  double w_i[kSecondOrderBlock];
  for (std::uint32_t ln = 0; ln < nb; ++ln) {
    ds_i[ln] = d_single[i0 + ln];
    top_i[ln] = top[i0 + ln];
    w_i[ln] = w[i0 + ln];
  }
  auto tail_sweep = [&](auto width, std::uint32_t lanes) {
    constexpr std::uint32_t kW = decltype(width)::value;
    const std::uint32_t nl = kW != 0 ? kW : lanes;
    for (std::uint32_t j = head_end; j < n; ++j) {
      const double dsj = d_single[j];
      const double wj = w[j];
      const double tailj = bottom[j] - wj;
      const double mj = het ? l[j] : wj;
      const double* dj = &dist[j * nl];
      for (std::uint32_t ln = 0; ln < nl; ++ln) {
        const double a = ds_i[ln];
        double dij = a > dsj ? a : dsj;
        const double cross = top_i[ln] + dj[ln] + w_i[ln] + wj + tailj;
        dij = cross > dij ? cross : dij;
        acc[ln] += (m_i[ln] * mj) * dij;
      }
    }
  };
  if (nb == kSecondOrderBlock) {
    tail_sweep(std::integral_constant<std::uint32_t, kSecondOrderBlock>{}, nb);
  } else {
    tail_sweep(std::integral_constant<std::uint32_t, 0>{}, nb);
  }
}

/// Assembles the expansion in the header comment from the sweep products —
/// serial O(V), shared verbatim by both drivers.
EXPMK_NOALLOC SecondOrderResult so_assemble(
    const graph::CsrDag& csr, RetryModel model_kind, double lambda, bool het,
    std::span<const double> l, std::span<const double> top,
    std::span<const double> bottom, std::span<const double> d_single,
    double d, const SoPrefix& pre, double pair_sum) {
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  const double A = pre.A;
  const double L = pre.L;
  double e2 = het ? d * (1.0 - L + L * L / 2.0)
                  : d * (1.0 - lambda * A + lambda * lambda * A * A / 2.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (het) {
      double coeff1;  // second-order coefficient on d(G_i)
      switch (model_kind) {
        case RetryModel::TwoState:
          coeff1 = l[i] * (l[i] / 2.0 - L);
          break;
        case RetryModel::Geometric:
          coeff1 = -l[i] * (L + l[i] / 2.0);
          break;
        default:
          coeff1 = 0.0;
      }
      e2 += (l[i] + coeff1) * d_single[i];
    } else {
      const double a = w[i];
      double coeff1;  // coefficient of lambda^2 on d(G_i)
      switch (model_kind) {
        case RetryModel::TwoState:
          coeff1 = a * (a / 2.0 - A);
          break;
        case RetryModel::Geometric:
          coeff1 = -a * (A + a / 2.0);
          break;
        default:
          coeff1 = 0.0;
      }
      e2 += (lambda * a + lambda * lambda * coeff1) * d_single[i];
    }
  }
  e2 += het ? pair_sum : lambda * lambda * pair_sum;

  if (model_kind == RetryModel::Geometric) {
    // Triple execution of a single task: weight 3 a_i with prob
    // (lambda_i a_i)^2 + O(lambda^3).
    double triple = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const double thr3 = top[i] + bottom[i] + 2.0 * w[i];
      triple += (het ? l[i] * l[i] : w[i] * w[i]) * std::max(d, thr3);
    }
    e2 += het ? triple : lambda * lambda * triple;
  }

  SecondOrderResult out;
  out.critical_path = d;
  out.first_order =
      het ? d + pre.fo_correction : d + lambda * pre.fo_correction;
  out.expected_makespan = e2;
  return out;
}

/// The single serial copy of the second-order expansion, over caller
/// scratch. `rates_csr` empty selects the uniform path, which keeps the
/// exact pre-Scenario factoring (sum a_i, scale by lambda where the
/// original scaled) so uniform results stay bit-identical to the
/// historical second_order(CsrDag, FailureModel, RetryModel); non-empty
/// rates run the generalized expansion with l_i = lambda_i a_i written
/// into `l` (same size as the graph, unused when uniform). All spans have
/// task_count() entries — except `dist`, the blocked sweep's lane matrix,
/// which needs task_count() * kSecondOrderBlock — and are fully
/// overwritten.
EXPMK_NOALLOC SecondOrderResult second_order_impl(
    const graph::CsrDag& csr, RetryModel model_kind, double lambda,
    std::span<const double> rates_csr, std::span<double> top,
    std::span<double> bottom, std::span<double> d_single,
    std::span<double> dist, std::span<double> l) {
  const std::size_t n = csr.task_count();
  const bool het = !rates_csr.empty();

  // Levels over the renumbered positions (one forward, one backward pass).
  const double d = graph::compute_levels(csr, csr.weights(), top, bottom);
  const SoPrefix pre =
      so_prefix(csr, het, d, rates_csr, top, bottom, d_single, l);

  // Pair terms sum_{i<j} m_i m_j d(G_ij) (m = a uniform, l het), swept in
  // blocks of kSecondOrderBlock consecutive sources (see so_block); the
  // per-lane partials fold into pair_sum in source order.
  double pair_sum = 0.0;
  for (std::uint32_t i0 = 0; i0 < n; i0 += kSecondOrderBlock) {
    const std::uint32_t nb = std::min<std::uint32_t>(
        kSecondOrderBlock, static_cast<std::uint32_t>(n) - i0);
    double acc[kSecondOrderBlock] = {};
    so_block(csr, het, l, top, bottom, d_single, i0, nb, dist, acc);
    for (std::uint32_t ln = 0; ln < nb; ++ln) pair_sum += acc[ln];
  }

  return so_assemble(csr, model_kind, lambda, het, l, top, bottom, d_single,
                     d, pre, pair_sum);
}

}  // namespace

SecondOrderResult second_order(const graph::CsrDag& csr,
                               const FailureModel& model,
                               RetryModel model_kind) {
  const std::size_t n = csr.task_count();
  std::vector<double> top(n), bottom(n), d_single(n);
  std::vector<double> dist(n * kSecondOrderBlock);
  return second_order_impl(csr, model_kind, model.lambda, {}, top, bottom,
                           d_single, dist, {});
}

EXPMK_NOALLOC SecondOrderResult second_order(const scenario::Scenario& sc,
                               exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  const graph::CsrDag& csr = sc.csr();
  const std::size_t n = csr.task_count();
  const bool het = sc.heterogeneous();
  return second_order_impl(
      csr, sc.retry(), het ? 0.0 : sc.uniform_model().lambda,
      het ? sc.rates_csr() : std::span<const double>{}, ws.doubles(n),
      ws.doubles(n), ws.doubles(n), ws.doubles(n * kSecondOrderBlock),
      het ? ws.doubles(n) : std::span<double>{});
}

SecondOrderResult second_order(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return second_order(sc, ws);
}

SecondOrderResult second_order(const scenario::Scenario& sc,
                               exp::Workspace& ws, std::size_t workers) {
  if (workers <= 1) return second_order(sc, ws);
  const exp::Workspace::Frame frame(ws);
  const graph::CsrDag& csr = sc.csr();
  const std::size_t n = csr.task_count();
  const bool het = sc.heterogeneous();
  const double lambda = het ? 0.0 : sc.uniform_model().lambda;
  const std::span<const double> rates_csr =
      het ? sc.rates_csr() : std::span<const double>{};
  const std::span<double> top = ws.doubles(n);
  const std::span<double> bottom = ws.doubles(n);
  const std::span<double> d_single = ws.doubles(n);
  const std::span<double> l =
      het ? ws.doubles(n) : std::span<double>{};
  const std::span<double> chunk_scratch =
      ws.doubles(exp::lp::fixed_chunk_count(n));

  const double d = exp::lp::compute_levels_parallel(
      csr, csr.weights(), sc.level_sets(), top, bottom, chunk_scratch,
      workers);
  const SoPrefix pre =
      so_prefix(csr, het, d, rates_csr, top, bottom, d_single, l);

  // Pair sweep: blocks fan out across workers — each is a full
  // longest_from_block edge pass, so one block is already a coarse work
  // unit. Every worker leases its own lane matrix from its thread-local
  // pooled workspace; the per-lane partials land in acc_all slots indexed
  // by (block, lane) and fold here in exactly the serial driver's
  // source order, so the sum is bit-identical for any worker count.
  const std::size_t nblocks =
      (n + kSecondOrderBlock - 1) / kSecondOrderBlock;
  const std::span<double> acc_all = ws.doubles(nblocks * kSecondOrderBlock);
  exp::lp::run_chunks(workers, nblocks, [&](std::size_t b) {
    exp::Workspace& tws = exp::Workspace::local();
    const exp::Workspace::Frame tframe(tws);
    const std::span<double> dist = tws.doubles(n * kSecondOrderBlock);
    const auto i0 = static_cast<std::uint32_t>(b * kSecondOrderBlock);
    const std::uint32_t nb = std::min<std::uint32_t>(
        kSecondOrderBlock, static_cast<std::uint32_t>(n) - i0);
    double acc[kSecondOrderBlock] = {};
    so_block(csr, het, l, top, bottom, d_single, i0, nb, dist, acc);
    for (std::uint32_t ln = 0; ln < nb; ++ln) {
      acc_all[b * kSecondOrderBlock + ln] = acc[ln];
    }
  });
  double pair_sum = 0.0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint32_t nb = std::min<std::uint32_t>(
        kSecondOrderBlock,
        static_cast<std::uint32_t>(n - b * kSecondOrderBlock));
    for (std::uint32_t ln = 0; ln < nb; ++ln) {
      pair_sum += acc_all[b * kSecondOrderBlock + ln];
    }
  }

  return so_assemble(csr, sc.retry(), lambda, het, l, top, bottom, d_single,
                     d, pre, pair_sum);
}

SecondOrderResult second_order(const graph::Dag& g, const FailureModel& model,
                               RetryModel model_kind,
                               std::span<const graph::TaskId> topo) {
  // The CSR build derives its own order; still validate the argument so a
  // caller passing an order from a different graph keeps its error signal.
  if (topo.size() != g.task_count()) {
    throw std::invalid_argument(
        "second_order: topo size mismatch with task count");
  }
  return second_order(graph::CsrDag(g), model, model_kind);
}

SecondOrderResult second_order(const graph::Dag& g, const FailureModel& model,
                               RetryModel model_kind) {
  return second_order(graph::CsrDag(g), model, model_kind);
}

}  // namespace expmk::core
