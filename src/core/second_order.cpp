#include "core/second_order.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/first_order.hpp"
#include "graph/levels.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

SecondOrderResult second_order(const graph::Dag& g, const FailureModel& model,
                               RetryModel model_kind,
                               std::span<const graph::TaskId> topo) {
  const double lambda = model.lambda;
  const auto& w = g.weights();
  const auto levels = graph::compute_levels(g, w, topo);
  const double d = levels.critical_path;
  const std::size_t n = g.task_count();

  double A = 0.0;
  for (const double a : w) A += a;

  // d(G_i) for every i, plus the first-order correction for reporting.
  std::vector<double> d_single(n);
  double fo_correction = 0.0;
  for (graph::TaskId i = 0; i < n; ++i) {
    const double thr2 = levels.top[i] + levels.bottom[i] + w[i];
    d_single[i] = std::max(d, thr2);
    fo_correction += w[i] * (d_single[i] - d);
  }

  // Accumulate pair terms sum_{i<j} a_i a_j d(G_ij) by streaming a
  // single-source longest path from every i. Pairs where j is reachable
  // from i use the cross(i,j) candidate; unordered unrelated pairs are
  // handled when scanning from min(i,j) (reachability is one-directional
  // in a DAG, so every unordered pair is visited exactly once from the
  // lexicographically smaller endpoint).
  double pair_sum = 0.0;
  for (graph::TaskId i = 0; i < n; ++i) {
    const auto lp = graph::longest_from(g, i, w, topo);
    for (graph::TaskId j = i + 1; j < n; ++j) {
      double dij = std::max(d_single[i], d_single[j]);
      if (lp[j] != -std::numeric_limits<double>::infinity()) {
        // Best path through both i and j (j reachable from i), with both
        // weights doubled: top(i) + [lp(i,j) + a_i + a_j] + tail(j).
        const double cross =
            levels.top[i] + lp[j] + w[i] + w[j] + (levels.bottom[j] - w[j]);
        dij = std::max(dij, cross);
      } else {
        // j might instead reach i: check via levels using the reverse
        // direction — recomputing lp from j for this test would be
        // quadratic in memory-friendly form, so instead note that if j
        // reaches i the pair is covered by the cross term when scanning
        // from j... but we only scan forward from i < j. Handle it here
        // by an explicit reverse query: longest path from j to i exists
        // iff top(i) >= top(j) + a_j along some path — information lp
        // does not carry. We therefore run the reverse single-source walk
        // lazily only when needed (see below).
        dij = dij;  // resolved by the reverse sweep after this loop
      }
      pair_sum += w[i] * w[j] * dij;
    }
    // Correct pairs where i is reachable FROM a later-id task j: the
    // forward scan above missed their cross term. Run the reverse walk
    // (predecessor direction) from i and patch those pairs.
    const auto lp_rev = [&] {
      std::vector<double> dist(n, -std::numeric_limits<double>::infinity());
      dist[i] = w[i];
      bool seen = false;
      for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const graph::TaskId v = *it;
        if (v == i) seen = true;
        if (!seen || dist[v] == -std::numeric_limits<double>::infinity()) {
          continue;
        }
        for (const graph::TaskId u : g.predecessors(v)) {
          const double cand = dist[v] + w[u];
          if (cand > dist[u]) dist[u] = cand;
        }
      }
      return dist;
    }();
    for (graph::TaskId j = i + 1; j < n; ++j) {
      if (lp_rev[j] == -std::numeric_limits<double>::infinity()) continue;
      // j -> i path exists: cross(j,i) with both doubled.
      const double cross =
          levels.top[j] + lp_rev[j] + w[i] + w[j] + (levels.bottom[i] - w[i]);
      const double old_dij = std::max(d_single[i], d_single[j]);
      const double new_dij = std::max(old_dij, cross);
      pair_sum += w[i] * w[j] * (new_dij - old_dij);
    }
  }

  // Assemble per the expansion in the header comment.
  double e2 = d * (1.0 - lambda * A + lambda * lambda * A * A / 2.0);
  for (graph::TaskId i = 0; i < n; ++i) {
    const double a = w[i];
    double coeff1;  // coefficient of lambda^2 on d(G_i)
    switch (model_kind) {
      case RetryModel::TwoState:
        coeff1 = a * (a / 2.0 - A);
        break;
      case RetryModel::Geometric:
        coeff1 = -a * (A + a / 2.0);
        break;
      default:
        coeff1 = 0.0;
    }
    e2 += (lambda * a + lambda * lambda * coeff1) * d_single[i];
  }
  e2 += lambda * lambda * pair_sum;

  if (model_kind == RetryModel::Geometric) {
    // Triple execution of a single task: weight 3 a_i with prob
    // (lambda a_i)^2 + O(lambda^3).
    double triple = 0.0;
    for (graph::TaskId i = 0; i < n; ++i) {
      const double thr3 = levels.top[i] + levels.bottom[i] + 2.0 * w[i];
      triple += w[i] * w[i] * std::max(d, thr3);
    }
    e2 += lambda * lambda * triple;
  }

  SecondOrderResult out;
  out.critical_path = d;
  out.first_order = d + lambda * fo_correction;
  out.expected_makespan = e2;
  return out;
}

SecondOrderResult second_order(const graph::Dag& g, const FailureModel& model,
                               RetryModel model_kind) {
  const auto topo = graph::topological_order(g);
  return second_order(g, model, model_kind, topo);
}

}  // namespace expmk::core
