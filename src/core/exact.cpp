#include "core/exact.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

namespace {

EXPMK_NOALLOC void check_size(const graph::Dag& g, std::size_t limit) {
  if (g.task_count() > limit) {
    throw std::invalid_argument(
        "exact oracle: graph too large for enumeration (" +
        std::to_string(g.task_count()) + " > " + std::to_string(limit) + ")");
  }
  if (g.task_count() == 0) {
    throw std::invalid_argument("exact oracle: empty graph");
  }
}

// The enumeration bodies are parameterized on the per-task success
// probabilities (and an arbitrary valid topological order), so the uniform
// and heterogeneous entry points share one implementation. The critical-
// path values are order-invariant across topological orders (each
// finish[v] is uniquely determined by the graph), so Dag-order and
// CSR-order callers produce bit-identical expectations.

EXPMK_NOALLOC double two_state_expectation(const graph::Dag& g,
                             std::span<const graph::TaskId> topo,
                             std::span<const double> p,
                             std::span<double> weights,
                             std::span<double> finish) {
  const std::size_t n = g.task_count();
  double expectation = 0.0;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double prob = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool failed = (mask >> i) & 1ULL;
      prob *= failed ? (1.0 - p[i]) : p[i];
      weights[i] = failed ? 2.0 * g.weight(i) : g.weight(i);
    }
    if (prob == 0.0) continue;
    expectation +=
        prob * graph::critical_path_length(g, weights, topo, finish);
  }
  return expectation;
}

double two_state_expectation(const graph::Dag& g,
                             std::span<const graph::TaskId> topo,
                             std::span<const double> p) {
  std::vector<double> weights(g.task_count());
  std::vector<double> finish(g.task_count());
  return two_state_expectation(g, topo, p, weights, finish);
}

prob::DiscreteDistribution two_state_distribution(
    const graph::Dag& g, std::span<const graph::TaskId> topo,
    std::span<const double> p) {
  const std::size_t n = g.task_count();
  std::vector<double> weights = g.weights();
  std::vector<prob::Atom> atoms;
  atoms.reserve(std::size_t{1} << n);
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double prob = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool failed = (mask >> i) & 1ULL;
      prob *= failed ? (1.0 - p[i]) : p[i];
      weights[i] = failed ? 2.0 * g.weight(i) : g.weight(i);
    }
    if (prob == 0.0) continue;
    atoms.push_back({graph::critical_path_length(g, weights, topo), prob});
  }
  return prob::DiscreteDistribution::from_atoms(std::move(atoms));
}

EXPMK_NOALLOC double geometric_expectation(const graph::Dag& g,
                             std::span<const graph::TaskId> topo,
                             std::span<const double> p, int max_executions,
                             exp::Workspace& ws) {
  if (max_executions < 1) {
    throw std::invalid_argument("exact_geometric: max_executions >= 1");
  }
  const exp::Workspace::Frame frame(ws);
  const std::size_t n = g.task_count();
  // states^n enumerations: keep the total under ~2^24.
  double combos = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    combos *= max_executions;
    if (combos > 2e7) {
      throw std::invalid_argument(
          "exact_geometric: state space too large for enumeration");
    }
  }
  check_size(g, 64);

  // Per-task state probabilities, flattened row-major [task][state]:
  // P(executions = e) = p (1-p)^{e-1} for e < max, remaining tail mass on
  // e = max (truncated geometric).
  const auto states = static_cast<std::size_t>(max_executions);
  const std::span<double> state_prob = ws.doubles(n * states);
  for (std::size_t i = 0; i < n; ++i) {
    double tail = 1.0;
    for (int e = 1; e < max_executions; ++e) {
      const double pe = tail * p[i];
      state_prob[i * states + static_cast<std::size_t>(e - 1)] = pe;
      tail -= pe;
    }
    state_prob[i * states + states - 1] = tail;
  }

  const std::span<int> state = ws.ints(n);  // executions - 1 per task
  std::fill(state.begin(), state.end(), 0);
  const std::span<double> weights = ws.doubles(n);
  const std::span<double> finish = ws.doubles(n);
  double expectation = 0.0;
  for (;;) {
    double prob = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      prob *= state_prob[i * states + static_cast<std::size_t>(state[i])];
      weights[i] = g.weight(i) * static_cast<double>(state[i] + 1);
    }
    if (prob > 0.0) {
      expectation +=
          prob * graph::critical_path_length(g, weights, topo, finish);
    }
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < n) {
      if (++state[pos] < max_executions) break;
      state[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return expectation;
}

}  // namespace

double exact_two_state(const graph::Dag& g, const FailureModel& model) {
  check_size(g, kMaxExactTasks);
  const auto topo = graph::topological_order(g);
  const auto p = success_probabilities(g, model);
  return two_state_expectation(g, topo, p);
}

EXPMK_NOALLOC double exact_two_state(const scenario::Scenario& sc, exp::Workspace& ws) {
  check_size(sc.dag(), kMaxExactTasks);
  const exp::Workspace::Frame frame(ws);
  const std::size_t n = sc.task_count();
  return two_state_expectation(sc.dag(), sc.topo(), sc.p_success(),
                               ws.doubles(n), ws.doubles(n));
}

double exact_two_state(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return exact_two_state(sc, ws);
}

prob::DiscreteDistribution exact_two_state_distribution(
    const graph::Dag& g, const FailureModel& model) {
  check_size(g, kMaxExactTasks);
  const auto topo = graph::topological_order(g);
  const auto p = success_probabilities(g, model);
  return two_state_distribution(g, topo, p);
}

prob::DiscreteDistribution exact_two_state_distribution(
    const scenario::Scenario& sc) {
  check_size(sc.dag(), kMaxExactTasks);
  return two_state_distribution(sc.dag(), sc.topo(), sc.p_success());
}

double exact_geometric(const graph::Dag& g, const FailureModel& model,
                       int max_executions) {
  const auto topo = graph::topological_order(g);
  const auto p = success_probabilities(g, model);
  exp::Workspace ws;
  return geometric_expectation(g, topo, p, max_executions, ws);
}

EXPMK_NOALLOC double exact_geometric(const scenario::Scenario& sc, int max_executions,
                       exp::Workspace& ws) {
  // The enumeration is per-task throughout (each task's truncated
  // geometric state table is built from its own cached p_i), so
  // heterogeneous per-task rates are exact too.
  return geometric_expectation(sc.dag(), sc.topo(), sc.p_success(),
                               max_executions, ws);
}

double exact_geometric(const scenario::Scenario& sc, int max_executions) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return exact_geometric(sc, max_executions, ws);
}

}  // namespace expmk::core
