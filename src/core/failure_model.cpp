#include "core/failure_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace expmk::core {

double FailureModel::p_success(double a) const {
  if (a < 0.0) throw std::invalid_argument("p_success: negative weight");
  if (lambda < 0.0) {
    // A negative rate would make p_success exceed 1 and silently corrupt
    // every probability downstream (the exact oracles would enumerate
    // negative-mass states). lambda == 0 is the explicit "never fails"
    // model and is fine.
    throw std::invalid_argument("p_success: negative lambda");
  }
  return std::exp(-lambda * a);
}

double FailureModel::p_fail(double a) const { return 1.0 - p_success(a); }

double FailureModel::expected_duration(double a, RetryModel model) const {
  switch (model) {
    case RetryModel::TwoState:
      return a * (2.0 - p_success(a));
    case RetryModel::Geometric:
      // Attempts ~ Geometric(p = e^{-lambda a}), mean 1/p.
      return a * std::exp(lambda * a);
  }
  return a;
}

double FailureModel::mtbf() const {
  if (lambda <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / lambda;
}

double lambda_for_pfail(double pfail, double mean_weight) {
  if (pfail < 0.0 || pfail >= 1.0) {
    throw std::invalid_argument("lambda_for_pfail: pfail must be in [0,1)");
  }
  if (mean_weight <= 0.0) {
    throw std::invalid_argument("lambda_for_pfail: mean weight must be > 0");
  }
  // pfail == 0 maps to lambda == 0 by design: the explicit zero-failure
  // model. Every consumer treats lambda == 0 the same way — p_success is
  // exactly 1, mtbf() is infinite, the exact oracles and MC engines
  // produce exactly d(G) — so a sweep may include pfail = 0 as its
  // deterministic baseline row (tests/test_sweep.cpp pins this
  // end-to-end).
  return -std::log1p(-pfail) / mean_weight;
}

FailureModel calibrate(const graph::Dag& g, double pfail) {
  return FailureModel{lambda_for_pfail(pfail, g.mean_weight())};
}

double per_processor_mtbf_days(double lambda, double processors) {
  if (processors <= 0.0) {
    throw std::invalid_argument("per_processor_mtbf_days: processors > 0");
  }
  if (lambda <= 0.0) return std::numeric_limits<double>::infinity();
  const double platform_mtbf_seconds = 1.0 / lambda;
  return platform_mtbf_seconds * processors / 86400.0;
}

std::vector<double> success_probabilities(const graph::Dag& g,
                                          const FailureModel& model) {
  std::vector<double> p(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    p[i] = model.p_success(g.weight(i));
  }
  return p;
}

}  // namespace expmk::core
