#include "core/verified.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/levels.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

std::vector<double> VerificationCosts::resolve(const graph::Dag& g) const {
  if (!per_task.empty()) {
    if (per_task.size() != g.task_count()) {
      throw std::invalid_argument(
          "VerificationCosts: per_task size mismatch");
    }
    for (const double v : per_task) {
      if (v < 0.0) {
        throw std::invalid_argument("VerificationCosts: negative cost");
      }
    }
    return per_task;
  }
  if (relative_cost < 0.0) {
    throw std::invalid_argument("VerificationCosts: negative relative cost");
  }
  std::vector<double> out(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    out[i] = relative_cost * g.weight(i);
  }
  return out;
}

FirstOrderResult first_order_verified(const graph::Dag& g,
                                      const FailureModel& model,
                                      const VerificationCosts& costs) {
  const auto v = costs.resolve(g);
  std::vector<double> w(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    w[i] = g.weight(i) + v[i];
  }
  const auto topo = graph::topological_order(g);
  const auto levels = graph::compute_levels(g, w, topo);

  FirstOrderResult out;
  out.critical_path = levels.critical_path;
  double correction = 0.0;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    // Failure probability stems from the compute part a_i only; a failure
    // repeats the full w_i = a_i + v_i.
    const double through_doubled = levels.top[i] + levels.bottom[i] + w[i];
    const double delta =
        std::max(0.0, through_doubled - levels.critical_path);
    correction += g.weight(i) * delta;
  }
  out.correction = model.lambda * correction;
  return out;
}

FirstOrderResult first_order_verified(const scenario::Scenario& sc,
                                      const VerificationCosts& costs) {
  const graph::Dag& g = sc.dag();
  if (!sc.heterogeneous()) {
    return first_order_verified(g, sc.uniform_model(), costs);
  }
  const auto v = costs.resolve(g);
  std::vector<double> w(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    w[i] = g.weight(i) + v[i];
  }
  const auto levels = graph::compute_levels(g, w, sc.topo());

  FirstOrderResult out;
  out.critical_path = levels.critical_path;
  double correction = 0.0;
  const std::span<const double> rates = sc.rates();
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double through_doubled = levels.top[i] + levels.bottom[i] + w[i];
    const double delta =
        std::max(0.0, through_doubled - levels.critical_path);
    // Failure mass lambda_i a_i: only the compute part a_i accumulates
    // error risk, at task i's own rate.
    correction += rates[i] * g.weight(i) * delta;
  }
  out.correction = correction;
  return out;
}

}  // namespace expmk::core
