#include "core/first_order.hpp"

#include <algorithm>

#include "exp/level_parallel.hpp"
#include "graph/csr.hpp"
#include "graph/level_sets.hpp"
#include "graph/levels.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

FirstOrderResult first_order(const graph::CsrDag& csr,
                             const FailureModel& model) {
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  std::vector<double> top(n), bottom(n);
  const double d = graph::compute_levels(csr, w, top, bottom);

  FirstOrderResult out;
  out.critical_path = d;
  double correction = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    // d(G_v) - d(G) = max(0, through(v) + a_v - d(G)): doubling a_v adds
    // a_v to every path through v and leaves other paths unchanged.
    const double through_doubled = top[v] + bottom[v] + w[v];
    const double delta = std::max(0.0, through_doubled - d);
    correction += w[v] * delta;
  }
  out.correction = model.lambda * correction;
  return out;
}

EXPMK_NOALLOC FirstOrderResult first_order(const scenario::Scenario& sc,
                             exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  const graph::CsrDag& csr = sc.csr();
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  const std::span<double> top = ws.doubles(n);
  const std::span<double> bottom = ws.doubles(n);
  const double d = graph::compute_levels(csr, w, top, bottom);

  FirstOrderResult out;
  out.critical_path = d;
  double correction = 0.0;
  if (!sc.heterogeneous()) {
    // Uniform: sum the deltas, multiply by lambda once — the exact
    // arithmetic of the pre-Scenario code path (bit-identical to
    // first_order(Dag, FailureModel)).
    for (std::uint32_t v = 0; v < n; ++v) {
      const double through_doubled = top[v] + bottom[v] + w[v];
      const double delta = std::max(0.0, through_doubled - d);
      correction += w[v] * delta;
    }
    out.correction = sc.uniform_model().lambda * correction;
  } else {
    const std::span<const double> rates = sc.rates_csr();
    for (std::uint32_t v = 0; v < n; ++v) {
      const double through_doubled = top[v] + bottom[v] + w[v];
      const double delta = std::max(0.0, through_doubled - d);
      // lambda_i folds into the sum per task instead of scaling it once.
      correction += rates[v] * w[v] * delta;
    }
    out.correction = correction;
  }
  return out;
}

FirstOrderResult first_order(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return first_order(sc, ws);
}

FirstOrderResult first_order(const scenario::Scenario& sc, exp::Workspace& ws,
                             std::size_t workers) {
  if (workers <= 1) return first_order(sc, ws);
  const exp::Workspace::Frame frame(ws);
  const graph::CsrDag& csr = sc.csr();
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  const std::span<double> top = ws.doubles(n);
  const std::span<double> bottom = ws.doubles(n);
  const std::span<double> contrib = ws.doubles(n);
  const std::size_t nchunks = exp::lp::fixed_chunk_count(n);
  const std::span<double> chunk_scratch = ws.doubles(nchunks);
  const double d = exp::lp::compute_levels_parallel(
      csr, w, sc.level_sets(), top, bottom, chunk_scratch, workers);

  FirstOrderResult out;
  out.critical_path = d;
  // Per-vertex contributions land in disjoint slots (same expressions as
  // the serial kernel); the sum then folds them in ascending-v order on
  // this thread — the serial kernel's exact addition sequence, so the
  // result is bit-identical for any worker count.
  const bool het = sc.heterogeneous();
  const std::span<const double> rates =
      het ? sc.rates_csr() : std::span<const double>{};
  exp::lp::run_chunks(workers, nchunks, [&](std::size_t c) {
    const std::size_t b = c * graph::kLevelChunk;
    const std::size_t e = std::min(n, b + graph::kLevelChunk);
    for (std::size_t v = b; v < e; ++v) {
      const double through_doubled = top[v] + bottom[v] + w[v];
      const double delta = std::max(0.0, through_doubled - d);
      contrib[v] = het ? rates[v] * w[v] * delta : w[v] * delta;
    }
  });
  double correction = 0.0;
  for (std::size_t v = 0; v < n; ++v) correction += contrib[v];
  out.correction = het ? correction : sc.uniform_model().lambda * correction;
  return out;
}

FirstOrderResult first_order(const graph::Dag& g, const FailureModel& model,
                             std::span<const graph::TaskId> topo) {
  // Honors the caller's precomputed order (callers like core::dvfs_sweep
  // pass it to amortize across repeated evaluations); the CSR overload
  // above is for callers already holding a CsrDag.
  const auto levels = graph::compute_levels(g, g.weights(), topo);
  FirstOrderResult out;
  out.critical_path = levels.critical_path;
  double correction = 0.0;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = g.weight(i);
    const double through_doubled = levels.top[i] + levels.bottom[i] + a;
    const double delta = std::max(0.0, through_doubled - levels.critical_path);
    correction += a * delta;
  }
  out.correction = model.lambda * correction;
  return out;
}

FirstOrderResult first_order(const graph::Dag& g, const FailureModel& model) {
  return first_order(graph::CsrDag(g), model);
}

double first_order_naive(const graph::Dag& g, const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  std::vector<double> finish(g.task_count());
  const double d = graph::critical_path_length(g, g.weights(), topo, finish);
  std::vector<double> weights = g.weights();
  double correction = 0.0;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = weights[i];
    weights[i] = 2.0 * a;
    const double d_i = graph::critical_path_length(g, weights, topo, finish);
    weights[i] = a;
    correction += a * (d_i - d);
  }
  return d + model.lambda * correction;
}

}  // namespace expmk::core
