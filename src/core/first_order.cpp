#include "core/first_order.hpp"

#include <algorithm>

#include "graph/csr.hpp"
#include "graph/levels.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

FirstOrderResult first_order(const graph::CsrDag& csr,
                             const FailureModel& model) {
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  std::vector<double> top(n), bottom(n);
  const double d = graph::compute_levels(csr, w, top, bottom);

  FirstOrderResult out;
  out.critical_path = d;
  double correction = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    // d(G_v) - d(G) = max(0, through(v) + a_v - d(G)): doubling a_v adds
    // a_v to every path through v and leaves other paths unchanged.
    const double through_doubled = top[v] + bottom[v] + w[v];
    const double delta = std::max(0.0, through_doubled - d);
    correction += w[v] * delta;
  }
  out.correction = model.lambda * correction;
  return out;
}

FirstOrderResult first_order(const scenario::Scenario& sc) {
  // Uniform scenarios go through the exact code path the pre-Scenario
  // library ran (sum the deltas, multiply by lambda once), keeping the
  // result bit-identical to first_order(Dag, FailureModel).
  if (!sc.heterogeneous()) {
    return first_order(sc.csr(), sc.uniform_model());
  }
  const graph::CsrDag& csr = sc.csr();
  const std::size_t n = csr.task_count();
  const std::span<const double> w = csr.weights();
  const std::span<const double> rates = sc.rates_csr();
  std::vector<double> top(n), bottom(n);
  const double d = graph::compute_levels(csr, w, top, bottom);

  FirstOrderResult out;
  out.critical_path = d;
  double correction = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    const double through_doubled = top[v] + bottom[v] + w[v];
    const double delta = std::max(0.0, through_doubled - d);
    // lambda_i folds into the sum per task instead of scaling it once.
    correction += rates[v] * w[v] * delta;
  }
  out.correction = correction;
  return out;
}

FirstOrderResult first_order(const graph::Dag& g, const FailureModel& model,
                             std::span<const graph::TaskId> topo) {
  // Honors the caller's precomputed order (callers like core::dvfs_sweep
  // pass it to amortize across repeated evaluations); the CSR overload
  // above is for callers already holding a CsrDag.
  const auto levels = graph::compute_levels(g, g.weights(), topo);
  FirstOrderResult out;
  out.critical_path = levels.critical_path;
  double correction = 0.0;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = g.weight(i);
    const double through_doubled = levels.top[i] + levels.bottom[i] + a;
    const double delta = std::max(0.0, through_doubled - levels.critical_path);
    correction += a * delta;
  }
  out.correction = model.lambda * correction;
  return out;
}

FirstOrderResult first_order(const graph::Dag& g, const FailureModel& model) {
  return first_order(graph::CsrDag(g), model);
}

double first_order_naive(const graph::Dag& g, const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  std::vector<double> finish(g.task_count());
  const double d = graph::critical_path_length(g, g.weights(), topo, finish);
  std::vector<double> weights = g.weights();
  double correction = 0.0;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = weights[i];
    weights[i] = 2.0 * a;
    const double d_i = graph::critical_path_length(g, weights, topo, finish);
    weights[i] = a;
    correction += a * (d_i - d);
  }
  return d + model.lambda * correction;
}

}  // namespace expmk::core
