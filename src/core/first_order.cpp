#include "core/first_order.hpp"

#include <algorithm>

#include "graph/levels.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::core {

FirstOrderResult first_order(const graph::Dag& g, const FailureModel& model,
                             std::span<const graph::TaskId> topo) {
  const auto levels = graph::compute_levels(g, g.weights(), topo);
  FirstOrderResult out;
  out.critical_path = levels.critical_path;

  double correction = 0.0;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = g.weight(i);
    // d(G_i) - d(G) = max(0, through(i) + a_i - d(G)): doubling a_i adds
    // a_i to every path through i and leaves other paths unchanged.
    const double through_doubled = levels.top[i] + levels.bottom[i] + a;
    const double delta = std::max(0.0, through_doubled - levels.critical_path);
    correction += a * delta;
  }
  out.correction = model.lambda * correction;
  return out;
}

FirstOrderResult first_order(const graph::Dag& g, const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  return first_order(g, model, topo);
}

double first_order_naive(const graph::Dag& g, const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  const double d = graph::critical_path_length(g, g.weights(), topo);
  std::vector<double> weights = g.weights();
  double correction = 0.0;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    const double a = weights[i];
    weights[i] = 2.0 * a;
    const double d_i = graph::critical_path_length(g, weights, topo);
    weights[i] = a;
    correction += a * (d_i - d);
  }
  return d + model.lambda * correction;
}

}  // namespace expmk::core
