// core/exact.hpp
//
// Exact expected-makespan oracles by explicit enumeration. The problem is
// #P-complete, so these are exponential-time and intentionally restricted
// to small graphs; they exist as ground truth for the approximation error
// tests (|FO - exact| = O(lambda^2), |SO - exact| = O(lambda^3)) and for
// validating the Monte-Carlo engine and the series-parallel evaluator.

#pragma once

#include <cstdint>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/dag.hpp"
#include "prob/discrete_distribution.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::core {

/// Maximum task count accepted by the enumeration oracles (2^V subsets).
inline constexpr std::size_t kMaxExactTasks = 24;

/// Exact E[makespan] of the probabilistic 2-state DAG: task i takes a_i
/// w.p. e^{-lambda a_i} and 2 a_i otherwise. O(2^V (V + E)); throws
/// std::invalid_argument if V > kMaxExactTasks.
[[nodiscard]] double exact_two_state(const graph::Dag& g,
                                     const FailureModel& model);

/// Workspace kernel: the perturbed-weight and longest-path scratch of the
/// enumeration (previously one vector per call, one more per mask through
/// the allocating critical_path_length overload) is leased from `ws` —
/// zero heap allocations on a warm workspace, even for the oracle.
EXPMK_NOALLOC [[nodiscard]] double exact_two_state(const scenario::Scenario& sc,
                                     exp::Workspace& ws);

/// Scenario-based entry point (no per-call preprocessing). The oracle is
/// per-task throughout, so heterogeneous per-task rates are exact too.
/// Lease-a-temporary adapter over the workspace kernel.
[[nodiscard]] double exact_two_state(const scenario::Scenario& sc);

/// Exact full makespan distribution of the 2-state DAG (same complexity).
[[nodiscard]] prob::DiscreteDistribution exact_two_state_distribution(
    const graph::Dag& g, const FailureModel& model);

/// Scenario-based entry point (heterogeneous rates supported).
[[nodiscard]] prob::DiscreteDistribution exact_two_state_distribution(
    const scenario::Scenario& sc);

/// Exact E[makespan] under the geometric model truncated at
/// `max_executions` executions per task (the tail probability mass is
/// assigned to the largest state, so the result is exact for the truncated
/// model and a lower bound converging exponentially fast for the true
/// one). O(max_executions^V (V + E)).
[[nodiscard]] double exact_geometric(const graph::Dag& g,
                                     const FailureModel& model,
                                     int max_executions);

/// Workspace kernel (flattened truncated-geometric state table + odometer
/// + weight/finish scratch all leased from `ws`). The enumeration is
/// per-task throughout, so heterogeneous per-task rates are exact too
/// (validated against a hand-built DiscreteDistribution oracle in
/// tests/test_flat_spgraph.cpp).
EXPMK_NOALLOC [[nodiscard]] double exact_geometric(const scenario::Scenario& sc,
                                     int max_executions, exp::Workspace& ws);

/// Scenario-based entry point (heterogeneous rates supported).
/// Lease-a-temporary adapter over the workspace kernel.
[[nodiscard]] double exact_geometric(const scenario::Scenario& sc,
                                     int max_executions);

}  // namespace expmk::core
