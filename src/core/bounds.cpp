#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "graph/longest_path.hpp"
#include "graph/metrics.hpp"
#include "graph/topological.hpp"
#include "prob/discrete_distribution.hpp"

namespace expmk::core {

namespace {

/// Shared body over per-task success probabilities. With the uniform
/// p_i = e^{-lambda a_i} this performs the exact arithmetic of the
/// pre-Scenario implementation (a_i (2 - p_i) is FailureModel's 2-state
/// expected duration), so the two entry points agree bitwise.
/// `expected_two_state` is an optional cache of exactly those values
/// (Scenario::expected_durations() of a TwoState scenario); empty means
/// compute them here.
MakespanBounds bounds_impl(const graph::Dag& g,
                           std::span<const graph::TaskId> topo,
                           std::span<const double> p,
                           std::span<const double> expected_two_state) {
  MakespanBounds out;
  out.failure_free = graph::critical_path_length(g, g.weights(), topo);

  // Jensen: longest path on expected durations (always the 2-state law —
  // the bounds are statements about the 2-state model).
  std::vector<double> expected_storage;
  if (expected_two_state.empty()) {
    expected_storage.resize(g.task_count());
    for (graph::TaskId i = 0; i < g.task_count(); ++i) {
      expected_storage[i] = g.weight(i) * (2.0 - p[i]);
    }
    expected_two_state = expected_storage;
  }
  out.jensen_lower =
      graph::critical_path_length(g, expected_two_state, topo);

  // Level decomposition: E[ sum_l max_{i in L_l} X_i ].
  const auto levels = graph::level_partition(g);
  double upper = 0.0;
  for (const auto& level : levels) {
    prob::DiscreteDistribution level_max = prob::DiscreteDistribution::point(0.0);
    for (const graph::TaskId i : level) {
      const double a = g.weight(i);
      if (a <= 0.0) continue;
      level_max = prob::DiscreteDistribution::max_of(
          level_max, prob::DiscreteDistribution::two_state(a, p[i]));
    }
    upper += level_max.mean();
  }
  out.level_upper = upper;
  return out;
}

// ------------------------------------------------------------------------
// Flat (allocation-free) max-of-independent-two-state fold, the workspace
// kernel's replacement for the DiscreteDistribution object fold above. It
// mirrors DiscreteDistribution::max_of + from_atoms OPERATION FOR
// OPERATION — support union, product-CDF differencing, the
// prob::kValueMergeEps value merge, the renormalizing division — so the
// level bound it produces is bitwise the value the object fold produces
// (pinned by tests/test_workspace.cpp's Dag-path-vs-kernel equality
// test); it just works in caller spans instead of freshly allocated
// atom vectors.

/// Atom list in parallel arrays (values strictly increasing, probs > 0).
struct FlatAtoms {
  std::span<double> vals;
  std::span<double> probs;
  std::size_t count = 0;
};

/// Folds max(X, Y) for X = `x`, Y the <= 2-atom two-state law of one task
/// (already materialized in yv/yp ascending), writing the consolidated,
/// renormalized result into `out` (capacity >= x.count + yn).
/// `support` is scratch of the same capacity.
void fold_max_two_state(const FlatAtoms& x, const double* yv,
                        const double* yp, std::size_t yn,
                        std::span<double> support, FlatAtoms& out) {
  // Support union: both inputs are sorted, so a merge with exact-equality
  // skip reproduces sort(concat) + unique from max_of.
  std::size_t ns = 0;
  {
    std::size_t i = 0, j = 0;
    while (i < x.count || j < yn) {
      double v;
      if (j >= yn || (i < x.count && x.vals[i] <= yv[j])) {
        v = x.vals[i++];
      } else {
        v = yv[j++];
      }
      if (ns == 0 || support[ns - 1] != v) support[ns++] = v;
    }
  }

  // Product-CDF differencing: F_max(v) = F_x(v) * F_y(v).
  std::size_t m = 0;
  {
    double prev_cdf = 0.0;
    std::size_t ix = 0, iy = 0;
    double fx = 0.0, fy = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      const double v = support[s];
      while (ix < x.count && x.vals[ix] <= v) fx += x.probs[ix++];
      while (iy < yn && yv[iy] <= v) fy += yp[iy++];
      const double f = fx * fy;
      if (f > prev_cdf) {
        out.vals[m] = v;
        out.probs[m] = f - prev_cdf;
        ++m;
      }
      prev_cdf = f;
    }
  }

  // from_atoms: consolidate (values within a relative eps merge into the
  // first atom's value) ...
  std::size_t w = 0;
  for (std::size_t t = 0; t < m; ++t) {
    if (w > 0) {
      const double scale = std::max(
          {std::fabs(out.vals[w - 1]), std::fabs(out.vals[t]), 1.0});
      if (out.vals[t] - out.vals[w - 1] <= prob::kValueMergeEps * scale) {
        out.probs[w - 1] += out.probs[t];
        continue;
      }
    }
    out.vals[w] = out.vals[t];
    out.probs[w] = out.probs[t];
    ++w;
  }
  // ... then renormalize.
  double total = 0.0;
  for (std::size_t t = 0; t < w; ++t) total += out.probs[t];
  for (std::size_t t = 0; t < w; ++t) out.probs[t] /= total;
  out.count = w;
}

}  // namespace

MakespanBounds makespan_bounds(const graph::Dag& g,
                               const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  const auto p = success_probabilities(g, model);
  return bounds_impl(g, topo, p, {});
}

MakespanBounds makespan_bounds(const scenario::Scenario& sc,
                               exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  const graph::Dag& g = sc.dag();
  const std::size_t n = g.task_count();
  const std::span<const graph::TaskId> topo = sc.topo();
  const std::span<const double> p = sc.p_success();

  MakespanBounds out;
  // d(G) is cached at compile; finish[v] is uniquely determined by the
  // graph, so the cached CSR sweep and the Dag sweep the per-call path
  // ran produce the identical double.
  out.failure_free = sc.critical_path();

  // Jensen: longest path on the (always 2-state) expected durations. A
  // TwoState scenario caches exactly a_i (2 - p_i); under Geometric retry
  // the cache holds the geometric ones, so compute the 2-state values
  // into a leased span with the same expression the per-call path used.
  std::span<const double> expected;
  if (sc.retry() == RetryModel::TwoState) {
    expected = sc.expected_durations();
  } else {
    const std::span<double> expected_scratch = ws.doubles(n);
    for (graph::TaskId i = 0; i < n; ++i) {
      expected_scratch[i] = g.weight(i) * (2.0 - p[i]);
    }
    expected = expected_scratch;
  }
  const std::span<double> finish = ws.doubles(n);
  out.jensen_lower =
      graph::critical_path_length(g, expected, topo, finish);

  // Level decomposition, flat: level index per task (pure dataflow, so
  // any topological order yields graph::level_partition's values), then
  // a counting sort that reproduces its ascending-id order per level.
  const std::span<std::uint32_t> level = ws.u32(n);
  std::size_t depth = 0;  // max_level + 1
  for (const graph::TaskId v : topo) {
    std::uint32_t lv = 0;
    for (const graph::TaskId u : g.predecessors(v)) {
      lv = std::max(lv, level[u] + 1);
    }
    level[v] = lv;
    depth = std::max<std::size_t>(depth, lv + 1);
  }
  const std::span<std::uint32_t> offsets = ws.u32(depth + 1);
  std::fill(offsets.begin(), offsets.end(), 0u);
  for (graph::TaskId v = 0; v < n; ++v) ++offsets[level[v] + 1];
  for (std::size_t l = 0; l < depth; ++l) offsets[l + 1] += offsets[l];
  const std::span<std::uint32_t> by_level = ws.u32(n);
  {
    const std::span<std::uint32_t> cursor = ws.u32(depth);
    std::copy(offsets.begin(), offsets.begin() + static_cast<long>(depth),
              cursor.begin());
    for (graph::TaskId v = 0; v < n; ++v) by_level[cursor[level[v]]++] = v;
  }

  // E[ sum_l max_{i in L_l} X_i ] via the flat fold. Atom capacity: the
  // support of a max of k two-state laws is a subset of {a_i, 2 a_i}
  // union {0}, i.e. at most 2k + 1 values.
  const std::size_t cap = 2 * n + 2;
  FlatAtoms cur{ws.doubles(cap), ws.doubles(cap), 0};
  FlatAtoms next{ws.doubles(cap), ws.doubles(cap), 0};
  const std::span<double> support = ws.doubles(cap);
  double upper = 0.0;
  for (std::size_t l = 0; l < depth; ++l) {
    // point(0.0), the fold's identity.
    cur.vals[0] = 0.0;
    cur.probs[0] = 1.0;
    cur.count = 1;
    for (std::uint32_t t = offsets[l]; t < offsets[l + 1]; ++t) {
      const graph::TaskId i = by_level[t];
      const double a = g.weight(i);
      if (a <= 0.0) continue;
      // two_state(a, p_i): degenerates to a point mass at the boundary
      // probabilities, exactly like DiscreteDistribution::two_state.
      double yv[2];
      double yp[2];
      std::size_t yn;
      if (p[i] >= 1.0) {
        yv[0] = a;
        yp[0] = 1.0;
        yn = 1;
      } else if (p[i] <= 0.0) {
        yv[0] = 2.0 * a;
        yp[0] = 1.0;
        yn = 1;
      } else {
        yv[0] = a;
        yp[0] = p[i];
        yv[1] = 2.0 * a;
        yp[1] = 1.0 - p[i];
        yn = 2;
      }
      fold_max_two_state(cur, yv, yp, yn, support, next);
      std::swap(cur, next);
    }
    // DiscreteDistribution::mean — atoms ascending.
    double mean = 0.0;
    for (std::size_t t = 0; t < cur.count; ++t) {
      mean += cur.vals[t] * cur.probs[t];
    }
    upper += mean;
  }
  out.level_upper = upper;
  return out;
}

MakespanBounds makespan_bounds(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return makespan_bounds(sc, ws);
}

}  // namespace expmk::core
