#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "exp/level_parallel.hpp"
#include "graph/longest_path.hpp"
#include "graph/metrics.hpp"
#include "graph/topological.hpp"
#include "prob/discrete_distribution.hpp"
#include "prob/dist_kernels.hpp"

namespace expmk::core {

namespace {

/// Shared body over per-task success probabilities. With the uniform
/// p_i = e^{-lambda a_i} this performs the exact arithmetic of the
/// pre-Scenario implementation (a_i (2 - p_i) is FailureModel's 2-state
/// expected duration), so the two entry points agree bitwise.
/// `expected_two_state` is an optional cache of exactly those values
/// (Scenario::expected_durations() of a TwoState scenario); empty means
/// compute them here.
MakespanBounds bounds_impl(const graph::Dag& g,
                           std::span<const graph::TaskId> topo,
                           std::span<const double> p,
                           std::span<const double> expected_two_state) {
  MakespanBounds out;
  out.failure_free = graph::critical_path_length(g, g.weights(), topo);

  // Jensen: longest path on expected durations (always the 2-state law —
  // the bounds are statements about the 2-state model).
  std::vector<double> expected_storage;
  if (expected_two_state.empty()) {
    expected_storage.resize(g.task_count());
    for (graph::TaskId i = 0; i < g.task_count(); ++i) {
      expected_storage[i] = g.weight(i) * (2.0 - p[i]);
    }
    expected_two_state = expected_storage;
  }
  out.jensen_lower =
      graph::critical_path_length(g, expected_two_state, topo);

  // Level decomposition: E[ sum_l max_{i in L_l} X_i ].
  const auto levels = graph::level_partition(g);
  double upper = 0.0;
  for (const auto& level : levels) {
    prob::DiscreteDistribution level_max = prob::DiscreteDistribution::point(0.0);
    for (const graph::TaskId i : level) {
      const double a = g.weight(i);
      if (a <= 0.0) continue;
      level_max = prob::DiscreteDistribution::max_of(
          level_max, prob::DiscreteDistribution::two_state(a, p[i]));
    }
    upper += level_max.mean();
  }
  out.level_upper = upper;
  return out;
}

/// Jensen lower bound over the compiled scenario, into leased scratch —
/// shared verbatim by the serial and level-parallel workspace kernels.
EXPMK_NOALLOC double jensen_bound(const scenario::Scenario& sc,
                                  exp::Workspace& ws) {
  const graph::Dag& g = sc.dag();
  const std::size_t n = g.task_count();
  const std::span<const graph::TaskId> topo = sc.topo();
  const std::span<const double> p = sc.p_success();
  // A TwoState scenario caches exactly a_i (2 - p_i); under Geometric
  // retry the cache holds the geometric ones, so compute the 2-state
  // values into a leased span with the same expression the per-call path
  // used.
  std::span<const double> expected;
  if (sc.retry() == RetryModel::TwoState) {
    expected = sc.expected_durations();
  } else {
    const std::span<double> expected_scratch = ws.doubles(n);
    for (graph::TaskId i = 0; i < n; ++i) {
      expected_scratch[i] = g.weight(i) * (2.0 - p[i]);
    }
    expected = expected_scratch;
  }
  const std::span<double> finish = ws.doubles(n);
  return graph::critical_path_length(g, expected, topo, finish);
}

/// Flat level partition into leased scratch: level index per task (pure
/// dataflow, so any topological order yields graph::level_partition's
/// values), then a counting sort that reproduces its ascending-id order
/// per level. Shared by both workspace kernels.
struct LevelPartition {
  std::size_t depth = 0;                 ///< max_level + 1
  std::span<std::uint32_t> offsets;      ///< size depth + 1
  std::span<std::uint32_t> by_level;     ///< tasks, level-major, id-ascending
};

EXPMK_NOALLOC LevelPartition build_level_partition(
    const graph::Dag& g, std::span<const graph::TaskId> topo,
    exp::Workspace& ws) {
  const std::size_t n = g.task_count();
  const std::span<std::uint32_t> level = ws.u32(n);
  LevelPartition out;
  for (const graph::TaskId v : topo) {
    std::uint32_t lv = 0;
    for (const graph::TaskId u : g.predecessors(v)) {
      lv = std::max(lv, level[u] + 1);
    }
    level[v] = lv;
    out.depth = std::max<std::size_t>(out.depth, lv + 1);
  }
  out.offsets = ws.u32(out.depth + 1);
  std::fill(out.offsets.begin(), out.offsets.end(), 0u);
  for (graph::TaskId v = 0; v < n; ++v) ++out.offsets[level[v] + 1];
  for (std::size_t l = 0; l < out.depth; ++l) {
    out.offsets[l + 1] += out.offsets[l];
  }
  out.by_level = ws.u32(n);
  {
    const std::span<std::uint32_t> cursor = ws.u32(out.depth);
    std::copy(out.offsets.begin(),
              out.offsets.begin() + static_cast<long>(out.depth),
              cursor.begin());
    for (graph::TaskId v = 0; v < n; ++v) {
      out.by_level[cursor[level[v]]++] = v;
    }
  }
  return out;
}

/// E[ max_{i in tasks} X_i ] of one level via the shared flat kernels
/// (prob/dist_kernels.hpp) — the same max_of arithmetic the
/// DiscreteDistribution object fold of the Dag entry point runs, on
/// leased Atom arenas instead of freshly allocated vectors, so the two
/// paths agree bitwise (pinned by tests/test_workspace.cpp). The result
/// does not depend on the arenas' capacity, only that it suffices
/// (2 * tasks.size() + 2), so per-level and whole-graph arenas give the
/// same bits — which is what lets the parallel kernel lease per level.
EXPMK_NOALLOC double level_fold_mean(const graph::Dag& g,
                                     std::span<const double> p,
                                     std::span<const std::uint32_t> tasks,
                                     std::span<prob::Atom> cur,
                                     std::span<prob::Atom> next,
                                     std::span<double> support) {
  namespace dk = prob::dist_kernels;
  // point(0.0), the fold's identity.
  std::size_t cur_n = dk::point(0.0, cur);
  for (const std::uint32_t i : tasks) {
    const double a = g.weight(i);
    if (a <= 0.0) continue;
    prob::Atom y[2];
    const std::size_t yn = dk::two_state(a, p[i], y);
    cur_n = dk::max_of(cur.subspan(0, cur_n), {y, yn}, next, support);
    std::swap(cur, next);
  }
  return dk::mean(cur.subspan(0, cur_n));
}

}  // namespace

MakespanBounds makespan_bounds(const graph::Dag& g,
                               const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  const auto p = success_probabilities(g, model);
  return bounds_impl(g, topo, p, {});
}

EXPMK_NOALLOC MakespanBounds makespan_bounds(const scenario::Scenario& sc,
                               exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  const graph::Dag& g = sc.dag();
  const std::size_t n = g.task_count();
  const std::span<const double> p = sc.p_success();

  MakespanBounds out;
  // d(G) is cached at compile; finish[v] is uniquely determined by the
  // graph, so the cached CSR sweep and the Dag sweep the per-call path
  // ran produce the identical double.
  out.failure_free = sc.critical_path();
  out.jensen_lower = jensen_bound(sc, ws);

  const LevelPartition lp = build_level_partition(g, sc.topo(), ws);

  // E[ sum_l max_{i in L_l} X_i ]. Atom capacity: the support of a max of
  // k two-state laws is a subset of {a_i, 2 a_i} union {0}, i.e. at most
  // 2k + 1 values.
  const std::size_t cap = 2 * n + 2;
  const std::span<prob::Atom> cur = ws.atoms(cap);
  const std::span<prob::Atom> next = ws.atoms(cap);
  const std::span<double> support = ws.doubles(cap);
  double upper = 0.0;
  for (std::size_t l = 0; l < lp.depth; ++l) {
    upper += level_fold_mean(
        g, p,
        lp.by_level.subspan(lp.offsets[l], lp.offsets[l + 1] - lp.offsets[l]),
        cur, next, support);
  }
  out.level_upper = upper;
  return out;
}

MakespanBounds makespan_bounds(const scenario::Scenario& sc) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return makespan_bounds(sc, ws);
}

MakespanBounds makespan_bounds(const scenario::Scenario& sc,
                               exp::Workspace& ws, std::size_t workers) {
  if (workers <= 1) return makespan_bounds(sc, ws);
  const exp::Workspace::Frame frame(ws);
  const graph::Dag& g = sc.dag();
  const std::span<const double> p = sc.p_success();

  MakespanBounds out;
  out.failure_free = sc.critical_path();
  out.jensen_lower = jensen_bound(sc, ws);

  const LevelPartition lp = build_level_partition(g, sc.topo(), ws);

  // Levels are mutually independent, so the folds — the dominant cost —
  // fan out one level per chunk; each worker leases right-sized arenas
  // from its thread-local pooled workspace. The means land in per-level
  // slots and fold serially in level order: the serial kernel's exact
  // addition sequence.
  const std::span<double> level_mean = ws.doubles(lp.depth);
  exp::lp::run_chunks(workers, lp.depth, [&](std::size_t l) {
    exp::Workspace& tws = exp::Workspace::local();
    const exp::Workspace::Frame tframe(tws);
    const std::size_t len = lp.offsets[l + 1] - lp.offsets[l];
    const std::size_t cap = 2 * len + 2;
    level_mean[l] = level_fold_mean(
        g, p, lp.by_level.subspan(lp.offsets[l], len), tws.atoms(cap),
        tws.atoms(cap), tws.doubles(cap));
  });
  double upper = 0.0;
  for (std::size_t l = 0; l < lp.depth; ++l) upper += level_mean[l];
  out.level_upper = upper;
  return out;
}

}  // namespace expmk::core
