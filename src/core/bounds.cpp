#include "core/bounds.hpp"

#include <vector>

#include "graph/longest_path.hpp"
#include "graph/metrics.hpp"
#include "graph/topological.hpp"
#include "prob/discrete_distribution.hpp"

namespace expmk::core {

MakespanBounds makespan_bounds(const graph::Dag& g,
                               const FailureModel& model) {
  MakespanBounds out;
  const auto topo = graph::topological_order(g);
  out.failure_free = graph::critical_path_length(g, g.weights(), topo);

  // Jensen: longest path on expected durations.
  std::vector<double> expected(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    expected[i] = model.expected_duration(g.weight(i), RetryModel::TwoState);
  }
  out.jensen_lower = graph::critical_path_length(g, expected, topo);

  // Level decomposition: E[ sum_l max_{i in L_l} X_i ].
  const auto levels = graph::level_partition(g);
  double upper = 0.0;
  for (const auto& level : levels) {
    prob::DiscreteDistribution level_max = prob::DiscreteDistribution::point(0.0);
    for (const graph::TaskId i : level) {
      const double a = g.weight(i);
      if (a <= 0.0) continue;
      level_max = prob::DiscreteDistribution::max_of(
          level_max, prob::DiscreteDistribution::two_state(
                         a, model.p_success(a)));
    }
    upper += level_max.mean();
  }
  out.level_upper = upper;
  return out;
}

}  // namespace expmk::core
