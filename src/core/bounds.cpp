#include "core/bounds.hpp"

#include <span>
#include <vector>

#include "graph/longest_path.hpp"
#include "graph/metrics.hpp"
#include "graph/topological.hpp"
#include "prob/discrete_distribution.hpp"

namespace expmk::core {

namespace {

/// Shared body over per-task success probabilities. With the uniform
/// p_i = e^{-lambda a_i} this performs the exact arithmetic of the
/// pre-Scenario implementation (a_i (2 - p_i) is FailureModel's 2-state
/// expected duration), so the two entry points agree bitwise.
/// `expected_two_state` is an optional cache of exactly those values
/// (Scenario::expected_durations() of a TwoState scenario); empty means
/// compute them here.
MakespanBounds bounds_impl(const graph::Dag& g,
                           std::span<const graph::TaskId> topo,
                           std::span<const double> p,
                           std::span<const double> expected_two_state) {
  MakespanBounds out;
  out.failure_free = graph::critical_path_length(g, g.weights(), topo);

  // Jensen: longest path on expected durations (always the 2-state law —
  // the bounds are statements about the 2-state model).
  std::vector<double> expected_storage;
  if (expected_two_state.empty()) {
    expected_storage.resize(g.task_count());
    for (graph::TaskId i = 0; i < g.task_count(); ++i) {
      expected_storage[i] = g.weight(i) * (2.0 - p[i]);
    }
    expected_two_state = expected_storage;
  }
  out.jensen_lower =
      graph::critical_path_length(g, expected_two_state, topo);

  // Level decomposition: E[ sum_l max_{i in L_l} X_i ].
  const auto levels = graph::level_partition(g);
  double upper = 0.0;
  for (const auto& level : levels) {
    prob::DiscreteDistribution level_max = prob::DiscreteDistribution::point(0.0);
    for (const graph::TaskId i : level) {
      const double a = g.weight(i);
      if (a <= 0.0) continue;
      level_max = prob::DiscreteDistribution::max_of(
          level_max, prob::DiscreteDistribution::two_state(a, p[i]));
    }
    upper += level_max.mean();
  }
  out.level_upper = upper;
  return out;
}

}  // namespace

MakespanBounds makespan_bounds(const graph::Dag& g,
                               const FailureModel& model) {
  const auto topo = graph::topological_order(g);
  const auto p = success_probabilities(g, model);
  return bounds_impl(g, topo, p, {});
}

MakespanBounds makespan_bounds(const scenario::Scenario& sc) {
  // A TwoState scenario already caches the 2-state expected durations;
  // under Geometric retry the cache holds the geometric ones, so the
  // impl recomputes the (always 2-state) Jensen weights itself.
  const std::span<const double> expected =
      sc.retry() == RetryModel::TwoState ? sc.expected_durations()
                                         : std::span<const double>{};
  return bounds_impl(sc.dag(), sc.topo(), sc.p_success(), expected);
}

}  // namespace expmk::core
