#include "core/criticality.hpp"

#include <cmath>

#include "graph/levels.hpp"
#include "graph/topological.hpp"
#include "mc/trial.hpp"
#include "prob/rng.hpp"

namespace expmk::core {

std::vector<double> slacks(const graph::Dag& g) {
  const auto topo = graph::topological_order(g);
  const auto levels = graph::compute_levels(g, g.weights(), topo);
  std::vector<double> out(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    out[i] = levels.critical_path - (levels.top[i] + levels.bottom[i]);
  }
  return out;
}

std::vector<graph::TaskId> critical_tasks(const graph::Dag& g,
                                          double tolerance) {
  const auto s = slacks(g);
  std::vector<graph::TaskId> out;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    if (s[i] <= tolerance) out.push_back(i);
  }
  return out;
}

namespace {

std::vector<double> criticality_impl(const graph::Dag& g,
                                     const mc::TrialContext& ctx,
                                     const CriticalityConfig& config) {
  const std::size_t n = g.task_count();
  std::vector<std::uint64_t> hits(n, 0);
  std::vector<double> durations(n);
  std::vector<double> top(n), bottom(n);

  for (std::uint64_t t = 0; t < config.trials; ++t) {
    prob::Xoshiro256pp rng(config.seed, t);
    // Sample durations (ignore the returned makespan; we recompute levels
    // to identify all tasks with zero slack this trial).
    (void)mc::run_trial(ctx, rng, durations);
    const auto levels = graph::compute_levels(g, durations, ctx.topo());
    for (graph::TaskId i = 0; i < n; ++i) {
      const double through = levels.top[i] + levels.bottom[i];
      if (through >= levels.critical_path * (1.0 - 1e-12)) ++hits[i];
    }
  }

  std::vector<double> out(n);
  const double total = static_cast<double>(config.trials);
  for (graph::TaskId i = 0; i < n; ++i) {
    out[i] = static_cast<double>(hits[i]) / total;
  }
  return out;
}

}  // namespace

std::vector<double> criticality_probabilities(
    const graph::Dag& g, const FailureModel& model,
    const CriticalityConfig& config) {
  const mc::TrialContext ctx(g, model, config.retry);
  return criticality_impl(g, ctx, config);
}

std::vector<double> criticality_probabilities(
    const scenario::Scenario& sc, const CriticalityConfig& config) {
  return criticality_impl(sc.dag(), mc::TrialContext(sc), config);
}

}  // namespace expmk::core
