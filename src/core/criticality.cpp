#include "core/criticality.hpp"

#include <algorithm>
#include <cmath>

#include "graph/levels.hpp"
#include "graph/topological.hpp"
#include "mc/trial.hpp"
#include "prob/rng.hpp"

namespace expmk::core {

std::vector<double> slacks(const graph::Dag& g) {
  const auto topo = graph::topological_order(g);
  const auto levels = graph::compute_levels(g, g.weights(), topo);
  std::vector<double> out(g.task_count());
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    out[i] = levels.critical_path - (levels.top[i] + levels.bottom[i]);
  }
  return out;
}

std::vector<graph::TaskId> critical_tasks(const graph::Dag& g,
                                          double tolerance) {
  const auto s = slacks(g);
  std::vector<graph::TaskId> out;
  for (graph::TaskId i = 0; i < g.task_count(); ++i) {
    if (s[i] <= tolerance) out.push_back(i);
  }
  return out;
}

namespace {

std::vector<double> criticality_impl(const mc::TrialContext& ctx,
                                     const CriticalityConfig& config,
                                     exp::Workspace& ws) {
  const exp::Workspace::Frame frame(ws);
  const graph::CsrDag& csr = ctx.csr();
  const std::size_t n = csr.task_count();
  const std::span<const graph::TaskId> order = csr.order();
  const std::span<std::uint64_t> hits = ws.u64(n);
  std::fill(hits.begin(), hits.end(), std::uint64_t{0});
  const std::span<double> dur_pos = ws.doubles(n);  // position order
  const std::span<double> finish = ws.doubles(n);
  const std::span<double> top = ws.doubles(n);
  const std::span<double> bottom = ws.doubles(n);

  for (std::uint64_t t = 0; t < config.trials; ++t) {
    prob::McRng rng(config.seed, t);
    // Sample durations straight in position order (ignore the returned
    // makespan; we recompute levels to identify all tasks with zero
    // slack this trial). Level values are graph-determined, so the CSR
    // sweep matches the Dag-order sweep the pre-workspace implementation
    // ran, bit for bit.
    (void)mc::run_trial_durations_csr(ctx, rng, finish, dur_pos);
    const double d = graph::compute_levels(csr, dur_pos, top, bottom);
    for (std::uint32_t pos = 0; pos < n; ++pos) {
      const double through = top[pos] + bottom[pos];
      if (through >= d * (1.0 - 1e-12)) ++hits[order[pos]];
    }
  }

  std::vector<double> out(n);
  const double total = static_cast<double>(config.trials);
  for (graph::TaskId i = 0; i < n; ++i) {
    out[i] = static_cast<double>(hits[i]) / total;
  }
  return out;
}

}  // namespace

std::vector<double> criticality_probabilities(
    const graph::Dag& g, const FailureModel& model,
    const CriticalityConfig& config) {
  const mc::TrialContext ctx(g, model, config.retry);
  exp::Workspace ws;
  return criticality_impl(ctx, config, ws);
}

std::vector<double> criticality_probabilities(
    const scenario::Scenario& sc, const CriticalityConfig& config,
    exp::Workspace& ws) {
  return criticality_impl(mc::TrialContext(sc), config, ws);
}

std::vector<double> criticality_probabilities(
    const scenario::Scenario& sc, const CriticalityConfig& config) {
  exp::Workspace ws;  // lease-a-temporary adapter; bit-identical
  return criticality_probabilities(sc, config, ws);
}

}  // namespace expmk::core
