// core/dvfs.hpp
//
// The DVFS (dynamic voltage/frequency scaling) silent-error model the
// paper motivates in Section II-B: lowering the voltage/frequency both
// slows tasks down AND raises the silent-error rate exponentially
// (equation (1) of the paper, originally Zhu/Melhem/Mosse):
//
//     lambda(s) = lambda0 * 10^( d * (smax - s) / (smax - smin) )
//
// where lambda0 is the error rate at full speed smax, d > 0 the
// sensitivity, and smin the lowest speed. Running at speed s also scales
// every weight a_i to a_i / s. Combined with the first-order estimator,
// this module answers the trade-off question the paper's introduction
// raises: how much expected makespan does energy-saving DVFS really cost
// once the induced silent errors are accounted for?
//
// Energy model: the classical cubic dynamic-power law, E(s) proportional
// to s^2 per unit of work (power ~ s^3, time ~ 1/s), which is what the
// cited DVFS works assume.

#pragma once

#include <vector>

#include "core/failure_model.hpp"
#include "graph/dag.hpp"

namespace expmk::core {

/// The speed-dependent error model of the paper's equation (1).
struct DvfsModel {
  double lambda0 = 1e-5;  ///< error rate at s = smax
  double sensitivity = 3.0;  ///< the paper's d (typically 2-4)
  double smin = 0.5;
  double smax = 1.0;

  /// lambda(s); throws std::invalid_argument outside [smin, smax] or for
  /// a degenerate speed range.
  [[nodiscard]] double lambda(double s) const;

  /// FailureModel at speed s (for weights expressed at unit speed; pair
  /// with scaled_weights()).
  [[nodiscard]] FailureModel failure_model(double s) const;
};

/// Per-point result of a speed sweep.
struct DvfsPoint {
  double speed = 0.0;
  double lambda = 0.0;
  double failure_free_makespan = 0.0;  ///< d(G)/s
  double expected_makespan = 0.0;      ///< first-order, silent errors priced in
  /// Dynamic energy relative to full speed: power ~ s^3 times the
  /// expected busy time (re-executions included), i.e. ~ s^2 per unit of
  /// work, normalized so full speed = 1.
  double relative_energy = 0.0;
};

/// Evaluates the makespan/energy trade-off of running the whole DAG at
/// each speed in `speeds` (weights are divided by s; lambda follows the
/// DVFS law). Uses the first-order estimator.
[[nodiscard]] std::vector<DvfsPoint> dvfs_sweep(
    const graph::Dag& g, const DvfsModel& model,
    const std::vector<double>& speeds);

/// The speed in `speeds` minimizing the first-order expected makespan —
/// with a rate that grows as speed drops, running slower can be *worse*
/// than the time-dilation alone suggests; this finds the sweet spot.
[[nodiscard]] double best_speed_for_makespan(
    const graph::Dag& g, const DvfsModel& model,
    const std::vector<double>& speeds);

}  // namespace expmk::core
