// core/bounds.hpp
//
// Analytic bounds on the expected makespan of the probabilistic 2-state
// DAG — cheap certificates that sandwich every estimator:
//
//  * Jensen lower bound: E[max ...] >= max(E ...) applied path-wise gives
//    E[M] >= d(G with expected durations). Always >= d(G) itself.
//  * Failure-free lower bound: d(G) (the paper's own remark).
//  * Level-decomposition upper bound: partition tasks into precedence
//    levels L_0 < L_1 < ...; every path visits at most one task per level
//    in order, so M <= sum_l max_{i in L_l} X_i and the right side's
//    expectation is exactly computable: tasks are independent, so each
//    level's max of 2-state laws is a small distribution product. (A
//    chain/series bound in the Kleindorfer tradition.)
//
// Tests verify lower <= exact <= upper on every enumerable graph family,
// and that the first-order estimate respects the envelope at small
// lambda.

#pragma once

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/dag.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::core {

/// The bound pair (plus the baseline d(G)).
struct MakespanBounds {
  double failure_free = 0.0;   ///< d(G): lower bound
  double jensen_lower = 0.0;   ///< d(G, expected durations): tighter lower
  double level_upper = 0.0;    ///< sum of per-level expected maxima
};

/// Computes all bounds under the 2-state model. O(V + E) plus the
/// per-level max distributions (atom count bounded by level width + 1).
[[nodiscard]] MakespanBounds makespan_bounds(const graph::Dag& g,
                                             const FailureModel& model);

/// Workspace kernel — the implementation the Scenario entry point
/// forwards to. Everything the per-call path allocated moves into leased
/// arenas: the Jensen longest-path scratch, the level partition (flat
/// counting sort instead of vector-of-vectors), and the per-level max
/// distributions (flat atom arrays mirroring DiscreteDistribution::max_of
/// operation-for-operation, so the values match the distribution-object
/// fold bitwise). ZERO heap allocations on a warm workspace.
EXPMK_NOALLOC [[nodiscard]] MakespanBounds makespan_bounds(const scenario::Scenario& sc,
                                             exp::Workspace& ws);

/// Scenario-based entry point. Both bounds are built from per-task
/// success probabilities, so heterogeneous rates are supported: Jensen
/// uses E[X_i] = a_i (2 - p_i), the level bound each task's own 2-state
/// law. Lease-a-temporary adapter over the workspace kernel.
[[nodiscard]] MakespanBounds makespan_bounds(const scenario::Scenario& sc);

/// Level-parallel variant: the per-level expected-maximum folds — the
/// dominant cost — fan out across `workers` threads (levels are mutually
/// independent; each worker leases its arenas from the thread-local
/// pooled workspace), and the per-level means fold serially in level
/// order. Bit-identical to the serial kernel for any worker count;
/// `workers <= 1` delegates to it (the parallel path is not
/// EXPMK_NOALLOC — task futures allocate).
[[nodiscard]] MakespanBounds makespan_bounds(const scenario::Scenario& sc,
                                             exp::Workspace& ws,
                                             std::size_t workers);

}  // namespace expmk::core
