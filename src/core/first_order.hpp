// core/first_order.hpp
//
// The paper's contribution (Section IV): a first-order (in lambda)
// approximation of the expected makespan of a DAG whose tasks are subject
// to silent errors.
//
// Derivation recap. Neglecting O(lambda^2) terms, at most one task fails,
// and
//     E(G) = d(G) + lambda * sum_i a_i * ( d(G_i) - d(G) ) + O(lambda^2),
// where d(G) is the failure-free critical-path length and G_i is G with
// a_i doubled. Because G_i differs from G in a single weight,
//     d(G_i) = max( d(G), top(i) + a_i + bottom(i) ),
// where top(i) + bottom(i) is the longest path through i — so the full
// approximation costs one forward pass + one backward pass: O(|V| + |E|).
// The paper states the naive O(|V|^2 + |V||E|) bound and notes that lower
// complexity is achievable; first_order_naive() implements the naive
// recompute-everything variant and the test suite checks the two agree to
// machine precision.

#pragma once

#include <span>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::core {

/// Breakdown of the first-order estimate.
struct FirstOrderResult {
  /// d(G): failure-free makespan (lower bound on the expectation).
  double critical_path = 0.0;
  /// lambda * sum_i a_i * (d(G_i) - d(G)) — the first-order correction.
  double correction = 0.0;
  /// critical_path + correction.
  [[nodiscard]] double expected_makespan() const {
    return critical_path + correction;
  }
};

/// Closed-form first-order approximation over a prebuilt CSR view,
/// O(|V| + |E|) — the implementation the Dag overloads adapt to. Callers
/// that already hold a CsrDag (e.g. via mc::TrialContext) should use this
/// directly and skip the rebuild.
[[nodiscard]] FirstOrderResult first_order(const graph::CsrDag& csr,
                                           const FailureModel& model);

/// Workspace kernel — the implementation every Scenario entry point
/// forwards to. Leases the two level buffers from `ws` (one frame, two
/// O(V) spans): ZERO heap allocations on a warm workspace. Under
/// heterogeneous per-task rates the correction generalizes term-by-term —
/// P(task i fails) ~ lambda_i a_i, so
///   E(G) ~ d(G) + sum_i lambda_i a_i (d(G_i) - d(G)) + O(max lambda^2).
EXPMK_NOALLOC [[nodiscard]] FirstOrderResult first_order(const scenario::Scenario& sc,
                                           exp::Workspace& ws);

/// Scenario-based entry point: reuses the compiled CSR view (no per-call
/// preprocessing). Lease-a-temporary adapter over the workspace kernel
/// (bit-identical); prefer passing a pooled Workspace when evaluating
/// repeatedly.
[[nodiscard]] FirstOrderResult first_order(const scenario::Scenario& sc);

/// Level-parallel variant: the two level sweeps run over the scenario's
/// cached graph::LevelSets schedule on `workers` threads (the caller plus
/// pool helpers — see exp/level_parallel.hpp), and the correction folds a
/// parallel-filled per-vertex contribution array serially. Bit-identical
/// to the serial kernel for any worker count; `workers <= 1` simply
/// delegates to it (and stays allocation-free — the parallel path is not
/// EXPMK_NOALLOC, task futures allocate).
[[nodiscard]] FirstOrderResult first_order(const scenario::Scenario& sc,
                                           exp::Workspace& ws,
                                           std::size_t workers);

/// Closed-form first-order approximation, O(|V| + |E|).
/// `topo` must be a topological order of `g` (see graph::topological_order).
[[nodiscard]] FirstOrderResult first_order(const graph::Dag& g,
                                           const FailureModel& model,
                                           std::span<const graph::TaskId> topo);

/// Convenience overload computing the order internally.
[[nodiscard]] FirstOrderResult first_order(const graph::Dag& g,
                                           const FailureModel& model);

/// Reference implementation that recomputes d(G_i) from scratch for every
/// task: O(|V| (|V| + |E|)). Used as a cross-check oracle in tests.
[[nodiscard]] double first_order_naive(const graph::Dag& g,
                                       const FailureModel& model);

}  // namespace expmk::core
