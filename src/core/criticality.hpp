// core/criticality.hpp
//
// Criticality analysis under silent errors. In the deterministic setting a
// task is critical iff top(i) + bottom(i) = d(G); with probabilistic
// durations the right notion is the *criticality probability*: the chance
// the task lies on a longest path. List schedulers use it to decide which
// tasks deserve protection (stronger verification, replication).
//
// Two views are provided:
//  * deterministic slack/criticality from the levels (exact, O(V + E));
//  * Monte-Carlo criticality probabilities under the failure model
//    (samples 2-state/geometric durations, marks all tasks on *some*
//    longest path per trial).

#pragma once

#include <cstdint>
#include <vector>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/dag.hpp"
#include "scenario/scenario.hpp"

namespace expmk::core {

/// Deterministic slack of every task: d(G) - (top(i) + bottom(i)) >= 0;
/// zero slack = on a critical path.
[[nodiscard]] std::vector<double> slacks(const graph::Dag& g);

/// Tasks with zero slack (the paper's CP-scheduling priority set).
[[nodiscard]] std::vector<graph::TaskId> critical_tasks(const graph::Dag& g,
                                                        double tolerance = 1e-12);

/// Monte-Carlo criticality estimation config.
struct CriticalityConfig {
  std::uint64_t trials = 10'000;
  std::uint64_t seed = 0xCA11;
  RetryModel retry = RetryModel::Geometric;
};

/// out[i] = estimated probability that task i lies on a longest path when
/// durations are sampled from the silent-error model. O(trials * (V+E)).
[[nodiscard]] std::vector<double> criticality_probabilities(
    const graph::Dag& g, const FailureModel& model,
    const CriticalityConfig& config = {});

/// Workspace kernel: every per-trial buffer (sampled durations, the CSR
/// level arrays, the hit counters) is leased from `ws`, so the only heap
/// allocation per call is the returned probability vector itself.
[[nodiscard]] std::vector<double> criticality_probabilities(
    const scenario::Scenario& sc, const CriticalityConfig& config,
    exp::Workspace& ws);

/// Scenario-based entry point (no CSR rebuild; heterogeneous per-task
/// rates supported). `config.retry` is ignored — the scenario's retry
/// model governs sampling. Lease-a-temporary adapter over the workspace
/// kernel.
[[nodiscard]] std::vector<double> criticality_probabilities(
    const scenario::Scenario& sc, const CriticalityConfig& config = {});

}  // namespace expmk::core
