// core/verified.hpp
//
// First-order estimator with explicit verification costs — the natural
// generalization the paper's model implies but folds away. The paper
// detects silent errors with a verification after each task and treats
// its cost as part of a_i; here the cost is explicit: task i computes for
// a_i (during which silent errors strike at rate lambda) and then runs a
// verification of duration v_i (assumed reliable, as in the paper's
// references [36-38] where detectors are cheap analytics).
//
// Effective durations: success a_i + v_i; one failure 2(a_i + v_i) (the
// failed attempt is verified too — that is how the failure is noticed).
// The failure probability involves only the compute part: 1 - e^{-l a_i}.
// The first-order machinery then applies verbatim on weights a_i + v_i
// with per-task failure "mass" a_i:
//
//   E(G) ~ d(G_w) + lambda * sum_i a_i * (d(G_w, i doubled) - d(G_w)),
//   w_i = a_i + v_i.

#pragma once

#include <span>
#include <vector>

#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "graph/dag.hpp"
#include "scenario/scenario.hpp"

namespace expmk::core {

/// Verification-cost schedule: either one relative factor for all tasks
/// (v_i = factor * a_i) or explicit per-task costs.
struct VerificationCosts {
  /// v_i = relative_cost * a_i when per_task is empty.
  double relative_cost = 0.0;
  /// Explicit v_i (size must match the DAG when non-empty).
  std::vector<double> per_task;

  /// Resolves v_i for a DAG; validates sizes/signs.
  [[nodiscard]] std::vector<double> resolve(const graph::Dag& g) const;
};

/// First-order expected makespan with verification costs. With all-zero
/// costs this equals first_order() exactly (tested).
[[nodiscard]] FirstOrderResult first_order_verified(
    const graph::Dag& g, const FailureModel& model,
    const VerificationCosts& costs);

/// Scenario-based entry point. Heterogeneous rates generalize the
/// correction term-by-term (failure mass lambda_i a_i per task, like
/// first_order(Scenario)). Note the verified weights w_i = a_i + v_i
/// differ from the scenario's cached weights, so the level pass runs on
/// its own weight vector either way.
[[nodiscard]] FirstOrderResult first_order_verified(
    const scenario::Scenario& sc, const VerificationCosts& costs);

}  // namespace expmk::core
