// core/second_order.hpp
//
// Second-order (in lambda) approximation of the expected makespan — the
// extension sketched in the paper's conclusion ("our general approach ...
// can be used to obtain a (more complicated but still tractable) second
// order approximation").
//
// Expanding E(G) = sum_S P(S) L(S) to O(lambda^3), with A = sum_i a_i:
//
//   2-state model (a task fails at most once):
//     E2 = d(G) * (1 - lambda A + lambda^2 A^2 / 2)
//        + sum_i [ lambda a_i + lambda^2 a_i (a_i/2 - A) ] * d(G_i)
//        + lambda^2 * sum_{i<j} a_i a_j * d(G_ij)
//
//   Geometric model (re-executions may fail again): the single-failure
//   coefficient becomes -a_i (A + a_i/2) and a triple-execution term
//   + lambda^2 sum_i a_i^2 d(G_i+) is added, where G_i+ has weight 3 a_i.
//
// d(G_ij) (both a_i and a_j doubled) is computed exactly without
// re-running longest-path per pair:
//   d(G_ij) = max( d(G), thr2(i), thr2(j), cross(i,j) )
// where thr2(x) = top(x) + 2 a_x + (bottom(x) - a_x) is the best path
// through x alone, and cross(i,j) = top(i) + lp(i,j) + a_i + a_j +
// (bottom(j) - a_j) is the best path through both (lp = longest i->j path,
// inclusive; only defined when j is reachable from i). Streaming one
// single-source longest-path per task gives O(|V| (|V| + |E|)) time and
// O(|V|) extra memory.

#pragma once

#include <span>

#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "graph/csr.hpp"
#include "graph/dag.hpp"
#include "scenario/scenario.hpp"
#include "util/contracts.hpp"

namespace expmk::core {

/// Breakdown of the second-order estimate.
struct SecondOrderResult {
  double critical_path = 0.0;   ///< d(G)
  double first_order = 0.0;     ///< the O(lambda) estimate, for reference
  double expected_makespan = 0.0;  ///< the O(lambda^2)-exact estimate
};

/// Second-order approximation over a prebuilt CSR view — the
/// implementation the Dag overloads adapt to. The topological
/// renumbering lets the pair sweep run forward-only (a position can never
/// reach an earlier one), and the per-source longest-path buffer is
/// reused across sources: zero allocation inside the O(|V|^2) loop.
[[nodiscard]] SecondOrderResult second_order(
    const graph::CsrDag& csr, const FailureModel& model,
    RetryModel model_kind = RetryModel::TwoState);

/// Workspace kernel — the implementation the Scenario entry point
/// forwards to. All O(V) scratch (levels, d(G_i), the streaming longest-
/// path buffer, the heterogeneous l_i vector) is leased from `ws`: ZERO
/// heap allocations on a warm workspace, including inside the O(|V|^2)
/// pair sweep. Under heterogeneous per-task rates the expansion
/// generalizes with l_i = lambda_i a_i and L = sum l_i (see the Scenario
/// overload below).
EXPMK_NOALLOC [[nodiscard]] SecondOrderResult second_order(const scenario::Scenario& sc,
                                             exp::Workspace& ws);

/// Scenario-based entry point: reuses the compiled CSR view and takes the
/// retry model from the scenario. Lease-a-temporary adapter over the
/// workspace kernel (bit-identical). Under heterogeneous per-task rates
/// the expansion generalizes with l_i = lambda_i a_i and L = sum l_i:
///   E2 = d(G) (1 - L + L^2/2)
///      + sum_i [ l_i + l_i (l_i/2 - L) ] d(G_i)        (2-state)
///      + sum_{i<j} l_i l_j d(G_ij),
/// with the geometric single-failure coefficient -l_i (L + l_i/2) and
/// triple term + sum_i l_i^2 d(G_i+) — setting lambda_i = lambda recovers
/// the uniform formulas in the file comment verbatim.
[[nodiscard]] SecondOrderResult second_order(const scenario::Scenario& sc);

/// Level-parallel variant: the level sweeps run over the scenario's cached
/// graph::LevelSets schedule and the O(V^2) pair sweep fans its
/// 8-source blocks out across `workers` threads (each worker leases its
/// own lane matrix from the thread-local pooled workspace); per-block
/// lane partials fold into the pair sum in the serial driver's source
/// order. Bit-identical to the serial kernel for any worker count;
/// `workers <= 1` delegates to it (the parallel path is not
/// EXPMK_NOALLOC — task futures allocate).
[[nodiscard]] SecondOrderResult second_order(const scenario::Scenario& sc,
                                             exp::Workspace& ws,
                                             std::size_t workers);

/// Second-order approximation. `model_kind` selects the 2-state or
/// geometric coefficient set (see file comment). O(|V| (|V| + |E|)).
[[nodiscard]] SecondOrderResult second_order(
    const graph::Dag& g, const FailureModel& model,
    RetryModel model_kind = RetryModel::TwoState);

/// Source-compatibility overload: the caller-provided order is no longer
/// consumed (the CSR build derives its own renumbering, which is what
/// makes the forward-only pair sweep valid); its cost is O(V + E) noise
/// next to the O(V^2) body.
[[nodiscard]] SecondOrderResult second_order(
    const graph::Dag& g, const FailureModel& model, RetryModel model_kind,
    std::span<const graph::TaskId> topo);

}  // namespace expmk::core
