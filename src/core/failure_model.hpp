// core/failure_model.hpp
//
// The silent-error failure model of Section III and the pfail -> lambda
// calibration of Section V-C.
//
// Tasks fail independently; failure arrival is exponential with rate
// lambda, so the first execution attempt of task i fails with probability
// 1 - exp(-lambda * a_i). A silent error is only caught by the verification
// at the end of the task, so a failed task re-executes from scratch.

#pragma once

#include <span>

#include "graph/dag.hpp"

namespace expmk::core {

/// How task re-execution is modeled.
enum class RetryModel {
  /// The paper's first-order model: a task fails at most once, i.e. its
  /// duration is a_i w.p. exp(-lambda a_i) and 2 a_i otherwise. This is
  /// the probabilistic 2-state DAG whose expected makespan is #P-complete.
  TwoState,
  /// The "true" model: re-executions may fail again; the number of
  /// executions is geometric. Differs from TwoState by O(lambda^2).
  Geometric,
};

/// The exponential silent-error model with rate `lambda` (errors per
/// second of execution).
///
/// `lambda == 0` is the explicit *zero-failure* model: p_success(a) == 1
/// for every weight, mtbf() is infinite, and every evaluator in the
/// library (exact enumeration, Monte-Carlo, the approximations) yields
/// exactly the failure-free makespan d(G). Negative lambda is rejected
/// (p_success throws) — it would mean probabilities above 1.
struct FailureModel {
  double lambda = 0.0;

  /// True when this model can never produce a failure (lambda == 0).
  [[nodiscard]] bool failure_free() const noexcept { return lambda <= 0.0; }

  /// Probability that one execution attempt of a task of weight `a`
  /// completes without a silent error: exp(-lambda * a). Throws
  /// std::invalid_argument for negative `a` or negative lambda.
  [[nodiscard]] double p_success(double a) const;

  /// Probability that one attempt fails: 1 - exp(-lambda * a).
  [[nodiscard]] double p_fail(double a) const;

  /// Expected duration of a task of weight `a` under the retry model:
  ///   TwoState:  a * (1 + (1 - e^{-lambda a}))
  ///   Geometric: a * e^{lambda a}   (mean of a * geometric(p))
  [[nodiscard]] double expected_duration(double a, RetryModel model) const;

  /// Mean time between errors, 1 / lambda (infinity when lambda == 0).
  [[nodiscard]] double mtbf() const;
};

/// Section V-C calibration: choose lambda so that a task of *average*
/// weight a-bar fails with probability pfail:  pfail = 1 - e^{-lambda a_bar}
/// => lambda = -ln(1 - pfail) / a_bar. Requires pfail in [0, 1) and
/// a_bar > 0. pfail == 0 yields lambda == 0, the explicit zero-failure
/// model (see FailureModel) — valid as a sweep baseline.
[[nodiscard]] double lambda_for_pfail(double pfail, double mean_weight);

/// Convenience: calibrate directly from a DAG's mean task weight.
[[nodiscard]] FailureModel calibrate(const graph::Dag& g, double pfail);

/// The paper's sanity narrative: for a platform of `processors` processors
/// with aggregate error rate `lambda`, the per-processor MTBF in days.
/// (pfail = 0.01 with a-bar = 0.15 s gives ~17 days on 100k processors.)
[[nodiscard]] double per_processor_mtbf_days(double lambda,
                                             double processors);

/// Per-task success probabilities for a whole DAG: out[i] =
/// exp(-lambda * a_i). The common precomputation of every estimator.
[[nodiscard]] std::vector<double> success_probabilities(
    const graph::Dag& g, const FailureModel& model);

}  // namespace expmk::core
