// core/bottom_levels.hpp
//
// Failure-aware bottom levels: the quantity the paper's introduction
// motivates ("computing the expected bottom-level of a task ... is key to
// designing silent-error-aware versions of effective list scheduling
// heuristics") and its conclusion proposes as future work.
//
// For task i, the failure-aware bottom level is the first-order expected
// longest path from i to any exit in the sub-DAG of i's descendants.
// Doubling a descendant j stretches the best i-to-exit path through j to
// lp(i,j) + a_j + (bottom(j) - a_j) = lp(i,j) + bottom(j), where lp(i,j)
// is the longest i -> j path (inclusive of both endpoint weights), so
//
//   bl_lambda(i) = bottom(i) + lambda *
//       sum_{j in desc(i) U {i}} a_j * max(0, lp(i,j)+bottom(j)-bottom(i)).
//
// (For j = i the term is a_i^2 * lambda: doubling i stretches every path
// from i by a_i.) Computing all levels costs one single-source
// longest-path per task: O(|V| (|V| + |E|)). The scheduler uses these as
// CP priorities.

#pragma once

#include <span>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/dag.hpp"

namespace expmk::core {

/// Failure-aware (first-order expected) bottom level of every task.
[[nodiscard]] std::vector<double> failure_aware_bottom_levels(
    const graph::Dag& g, const FailureModel& model);

/// As above with a caller-provided topological order.
[[nodiscard]] std::vector<double> failure_aware_bottom_levels(
    const graph::Dag& g, const FailureModel& model,
    std::span<const graph::TaskId> topo);

/// Single-task variant (useful when only a few priorities are needed).
[[nodiscard]] double failure_aware_bottom_level(
    const graph::Dag& g, const FailureModel& model, graph::TaskId task,
    std::span<const graph::TaskId> topo);

}  // namespace expmk::core
