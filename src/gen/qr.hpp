// gen/qr.hpp
//
// Task graph of the flat-tree tiled QR factorization of a k x k tile matrix
// (the paper's third DAG class; Figure 3 shows k = 5).
//
// Tasks and dependencies (kk = elimination step):
//   GEQRT_kk              QR of diagonal tile (kk,kk)
//   TSQRT_m_kk  (m > kk)  eliminate tile (m,kk) against the panel; tiles of
//                         a panel are chained (flat tree)
//   UNMQR_kk_n  (n > kk)  apply the GEQRT reflector to row tile (kk,n)
//   TSMQR_m_n_kk (m,n>kk) apply the TSQRT reflector to tiles (m,n)/(kk,n);
//                         chained down each column n within a step
//
//   GEQRT_kk     <- TSMQR_kk_kk_{kk-1}                           (kk > 0)
//   TSQRT_m_kk   <- [m == kk+1 ? GEQRT_kk : TSQRT_{m-1}_kk],
//                   TSMQR_m_kk_{kk-1}                            (kk > 0)
//   UNMQR_kk_n   <- GEQRT_kk, TSMQR_kk_n_{kk-1}                  (kk > 0)
//   TSMQR_m_n_kk <- [m == kk+1 ? UNMQR_kk_n : TSMQR_{m-1}_n_kk],
//                   TSQRT_m_kk, TSMQR_m_n_{kk-1}                 (kk > 0)
//
// Task count equals the LU count (55 for k = 5, 650 for k = 12) but each
// kernel costs roughly twice its LU counterpart (the paper: "tasks in QR
// entail, on average, twice as many floating-point operations as in LU").

#pragma once

#include "gen/kernels.hpp"
#include "graph/dag.hpp"

namespace expmk::gen {

/// Builds the QR DAG for a k x k tile matrix. k >= 1.
[[nodiscard]] graph::Dag qr_dag(int k, const QrTimings& timings = {});

/// Closed-form task count of qr_dag(k) (same formula as LU).
[[nodiscard]] std::size_t qr_task_count(int k);

}  // namespace expmk::gen
