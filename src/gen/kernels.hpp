// gen/kernels.hpp
//
// Per-kernel execution times for the tiled factorization task graphs.
//
// The paper weights tasks "based on actual kernel execution times as
// reported in [StarPU] for an execution on Nvidia Tesla M2070 GPUs with
// tiles of size b = 960" and states the resulting average task weight is
// a-bar = 0.15 s. The exact per-kernel table was never published with the
// paper, so (see DESIGN.md, "Substitutions") we ship a default table chosen
// to match the paper's reported statistics:
//   * GEMM-class update kernels dominate and cost ~0.19 s;
//   * panel kernels (POTRF/GETRF/GEQRT, TRSM-family) cost 0.05-0.15 s;
//   * each QR kernel costs ~2x its LU counterpart (the paper: "the tasks
//     in QR entail, on average, twice as many floating-point operations");
//   * resulting a-bar: ~0.147 s (Cholesky k=12), ~0.164 s (LU k=12),
//     ~0.274 s (QR k=12).
// Every weight is overridable, so users with a measured table can
// reproduce their own platform.

#pragma once

#include <string_view>

namespace expmk::gen {

/// Kernel weights (seconds) for the Cholesky DAG.
struct CholeskyTimings {
  double potrf = 0.0581;
  double trsm = 0.0934;
  double syrk = 0.0962;
  double gemm = 0.1837;
};

/// Kernel weights (seconds) for the LU DAG (tiled, no pivoting).
struct LuTimings {
  double getrf = 0.1198;
  double trsm_lower = 0.0921;  ///< TRSML: apply L^{-1} to a column tile
  double trsm_upper = 0.0934;  ///< TRSMU: apply U^{-1} to a row tile
  double gemm = 0.1837;
};

/// Kernel weights (seconds) for the QR DAG (flat-tree tiled QR).
struct QrTimings {
  double geqrt = 0.1132;
  double tsqrt = 0.1533;
  double unmqr = 0.1493;
  double tsmqr = 0.3104;
};

/// Kernel family (prefix of a generated task name). Exposed so schedulers
/// and exporters can switch on the family without string parsing.
enum class KernelFamily {
  POTRF, TRSM, SYRK, GEMM,        // Cholesky
  GETRF, TRSML, TRSMU,            // LU (GEMM shared)
  GEQRT, TSQRT, UNMQR, TSMQR,     // QR
  Unknown,
};

/// Parses the prefix of a task name (text before the first '_').
[[nodiscard]] KernelFamily kernel_family_of(std::string_view task_name);

/// Human-readable family name ("GEMM", ...).
[[nodiscard]] std::string_view kernel_family_name(KernelFamily family);

}  // namespace expmk::gen
