#include "gen/lu.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace expmk::gen {

namespace {
std::string nm(const char* base, int a, int b) {
  return std::string(base) + '_' + std::to_string(a) + '_' + std::to_string(b);
}
std::string nm(const char* base, int a, int b, int c) {
  return nm(base, a, b) + '_' + std::to_string(c);
}
}  // namespace

std::size_t lu_task_count(int k) {
  const std::size_t n = static_cast<std::size_t>(k);
  // k GETRF + 2*C(k,2) TRSM + sum t^2 GEMM.
  return n + n * (n - 1) + (n - 1) * n * (2 * n - 1) / 6;
}

graph::Dag lu_dag(int k, const LuTimings& t) {
  if (k < 1) throw std::invalid_argument("lu_dag: k >= 1 required");
  using graph::TaskId;
  graph::Dag g;

  const auto K = static_cast<std::size_t>(k);
  std::vector<TaskId> getrf(K, graph::kNoTask);
  std::vector<std::vector<TaskId>> trsml(K, std::vector<TaskId>(K, graph::kNoTask));
  std::vector<std::vector<TaskId>> trsmu(K, std::vector<TaskId>(K, graph::kNoTask));
  // gemm[m][n][kk]
  std::vector<std::vector<std::vector<TaskId>>> gemm(
      K, std::vector<std::vector<TaskId>>(K, std::vector<TaskId>(K, graph::kNoTask)));

  for (int kk = 0; kk < k; ++kk) {
    getrf[kk] = g.add_task("GETRF_" + std::to_string(kk), t.getrf);
    for (int m = kk + 1; m < k; ++m) {
      trsml[m][kk] = g.add_task(nm("TRSML", m, kk), t.trsm_lower);
    }
    for (int n = kk + 1; n < k; ++n) {
      trsmu[kk][n] = g.add_task(nm("TRSMU", kk, n), t.trsm_upper);
    }
    for (int m = kk + 1; m < k; ++m) {
      for (int n = kk + 1; n < k; ++n) {
        gemm[m][n][kk] = g.add_task(nm("GEMM", m, n, kk), t.gemm);
      }
    }
  }

  for (int kk = 0; kk < k; ++kk) {
    if (kk > 0) g.add_edge(gemm[kk][kk][kk - 1], getrf[kk]);
    for (int m = kk + 1; m < k; ++m) {
      g.add_edge(getrf[kk], trsml[m][kk]);
      if (kk > 0) g.add_edge(gemm[m][kk][kk - 1], trsml[m][kk]);
    }
    for (int n = kk + 1; n < k; ++n) {
      g.add_edge(getrf[kk], trsmu[kk][n]);
      if (kk > 0) g.add_edge(gemm[kk][n][kk - 1], trsmu[kk][n]);
    }
    for (int m = kk + 1; m < k; ++m) {
      for (int n = kk + 1; n < k; ++n) {
        g.add_edge(trsml[m][kk], gemm[m][n][kk]);
        g.add_edge(trsmu[kk][n], gemm[m][n][kk]);
        if (kk > 0) g.add_edge(gemm[m][n][kk - 1], gemm[m][n][kk]);
      }
    }
  }
  return g;
}

}  // namespace expmk::gen
