#include "gen/qr.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "gen/lu.hpp"

namespace expmk::gen {

namespace {
std::string nm(const char* base, int a, int b) {
  return std::string(base) + '_' + std::to_string(a) + '_' + std::to_string(b);
}
std::string nm(const char* base, int a, int b, int c) {
  return nm(base, a, b) + '_' + std::to_string(c);
}
}  // namespace

std::size_t qr_task_count(int k) { return lu_task_count(k); }

graph::Dag qr_dag(int k, const QrTimings& t) {
  if (k < 1) throw std::invalid_argument("qr_dag: k >= 1 required");
  using graph::TaskId;
  graph::Dag g;

  const auto K = static_cast<std::size_t>(k);
  std::vector<TaskId> geqrt(K, graph::kNoTask);
  std::vector<std::vector<TaskId>> tsqrt(K, std::vector<TaskId>(K, graph::kNoTask));
  std::vector<std::vector<TaskId>> unmqr(K, std::vector<TaskId>(K, graph::kNoTask));
  // tsmqr[m][n][kk]
  std::vector<std::vector<std::vector<TaskId>>> tsmqr(
      K, std::vector<std::vector<TaskId>>(K, std::vector<TaskId>(K, graph::kNoTask)));

  for (int kk = 0; kk < k; ++kk) {
    geqrt[kk] = g.add_task("GEQRT_" + std::to_string(kk), t.geqrt);
    for (int m = kk + 1; m < k; ++m) {
      tsqrt[m][kk] = g.add_task(nm("TSQRT", m, kk), t.tsqrt);
    }
    for (int n = kk + 1; n < k; ++n) {
      unmqr[kk][n] = g.add_task(nm("UNMQR", kk, n), t.unmqr);
    }
    for (int m = kk + 1; m < k; ++m) {
      for (int n = kk + 1; n < k; ++n) {
        tsmqr[m][n][kk] = g.add_task(nm("TSMQR", m, n, kk), t.tsmqr);
      }
    }
  }

  for (int kk = 0; kk < k; ++kk) {
    if (kk > 0) g.add_edge(tsmqr[kk][kk][kk - 1], geqrt[kk]);
    for (int m = kk + 1; m < k; ++m) {
      g.add_edge(m == kk + 1 ? geqrt[kk] : tsqrt[m - 1][kk], tsqrt[m][kk]);
      if (kk > 0) g.add_edge(tsmqr[m][kk][kk - 1], tsqrt[m][kk]);
    }
    for (int n = kk + 1; n < k; ++n) {
      g.add_edge(geqrt[kk], unmqr[kk][n]);
      if (kk > 0) g.add_edge(tsmqr[kk][n][kk - 1], unmqr[kk][n]);
    }
    for (int m = kk + 1; m < k; ++m) {
      for (int n = kk + 1; n < k; ++n) {
        g.add_edge(m == kk + 1 ? unmqr[kk][n] : tsmqr[m - 1][n][kk],
                   tsmqr[m][n][kk]);
        g.add_edge(tsqrt[m][kk], tsmqr[m][n][kk]);
        if (kk > 0) g.add_edge(tsmqr[m][n][kk - 1], tsmqr[m][n][kk]);
      }
    }
  }
  return g;
}

}  // namespace expmk::gen
