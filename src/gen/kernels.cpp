#include "gen/kernels.hpp"

namespace expmk::gen {

KernelFamily kernel_family_of(std::string_view task_name) {
  const auto pos = task_name.find('_');
  const std::string_view prefix = task_name.substr(0, pos);
  if (prefix == "POTRF") return KernelFamily::POTRF;
  if (prefix == "TRSM") return KernelFamily::TRSM;
  if (prefix == "SYRK") return KernelFamily::SYRK;
  if (prefix == "GEMM") return KernelFamily::GEMM;
  if (prefix == "GETRF") return KernelFamily::GETRF;
  if (prefix == "TRSML") return KernelFamily::TRSML;
  if (prefix == "TRSMU") return KernelFamily::TRSMU;
  if (prefix == "GEQRT") return KernelFamily::GEQRT;
  if (prefix == "TSQRT") return KernelFamily::TSQRT;
  if (prefix == "UNMQR") return KernelFamily::UNMQR;
  if (prefix == "TSMQR") return KernelFamily::TSMQR;
  return KernelFamily::Unknown;
}

std::string_view kernel_family_name(KernelFamily family) {
  switch (family) {
    case KernelFamily::POTRF: return "POTRF";
    case KernelFamily::TRSM: return "TRSM";
    case KernelFamily::SYRK: return "SYRK";
    case KernelFamily::GEMM: return "GEMM";
    case KernelFamily::GETRF: return "GETRF";
    case KernelFamily::TRSML: return "TRSML";
    case KernelFamily::TRSMU: return "TRSMU";
    case KernelFamily::GEQRT: return "GEQRT";
    case KernelFamily::TSQRT: return "TSQRT";
    case KernelFamily::UNMQR: return "UNMQR";
    case KernelFamily::TSMQR: return "TSMQR";
    case KernelFamily::Unknown: return "Unknown";
  }
  return "Unknown";
}

}  // namespace expmk::gen
