// gen/lu.hpp
//
// Task graph of the tiled LU factorization (no pivoting) of a k x k tile
// matrix (the paper's second DAG class; Figure 2 shows k = 5).
//
// Tasks and dependencies (kk = elimination step):
//   GETRF_kk              factor diagonal tile (kk,kk)
//   TRSML_m_kk  (m > kk)  apply L^{-1}: update column tile (m,kk)
//   TRSMU_kk_n  (n > kk)  apply U^{-1}: update row tile (kk,n)
//   GEMM_m_n_kk (m,n>kk)  trailing update of tile (m,n)
//
//   GETRF_kk    <- GEMM_kk_kk_{kk-1}                        (kk > 0)
//   TRSML_m_kk  <- GETRF_kk, GEMM_m_kk_{kk-1}               (latter if kk>0)
//   TRSMU_kk_n  <- GETRF_kk, GEMM_kk_n_{kk-1}               (latter if kk>0)
//   GEMM_m_n_kk <- TRSML_m_kk, TRSMU_kk_n, GEMM_m_n_{kk-1}  (latter if kk>0)
//
// Task count: k + 2*C(k,2) + sum_{t=1}^{k-1} t^2  (= 55 for k = 5, matching
// Figure 2; 650 for k = 12; 2870 for k = 20 — the paper's Table I size).

#pragma once

#include "gen/kernels.hpp"
#include "graph/dag.hpp"

namespace expmk::gen {

/// Builds the LU DAG for a k x k tile matrix. k >= 1.
[[nodiscard]] graph::Dag lu_dag(int k, const LuTimings& timings = {});

/// Closed-form task count of lu_dag(k).
[[nodiscard]] std::size_t lu_task_count(int k);

}  // namespace expmk::gen
