#include "gen/random_dags.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "prob/rng.hpp"

namespace expmk::gen {

namespace {

using expmk::prob::Xoshiro256pp;
using graph::Dag;
using graph::TaskId;

double draw_weight(Xoshiro256pp& rng, const WeightRange& w) {
  if (w.lo <= 0.0 || w.hi < w.lo) {
    throw std::invalid_argument("WeightRange: need 0 < lo <= hi");
  }
  return w.lo + (w.hi - w.lo) * rng.uniform();
}

}  // namespace

Dag layered_random(int layers, int width, double edge_prob,
                   std::uint64_t seed, WeightRange w) {
  if (layers < 1 || width < 1) {
    throw std::invalid_argument("layered_random: layers, width >= 1");
  }
  Xoshiro256pp rng(seed);
  Dag g;
  g.reserve_tasks(static_cast<std::size_t>(layers) * width);
  std::vector<std::vector<TaskId>> layer(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      layer[l].push_back(g.add_task("L" + std::to_string(l) + "_" +
                                        std::to_string(i),
                                    draw_weight(rng, w)));
    }
  }
  for (int l = 1; l < layers; ++l) {
    for (const TaskId v : layer[l]) {
      bool any = false;
      for (const TaskId u : layer[l - 1]) {
        if (rng.bernoulli(edge_prob)) {
          g.add_edge(u, v);
          any = true;
        }
      }
      if (!any) {
        // Guarantee at least one predecessor so layers really are stages.
        const auto pick = rng.below(layer[l - 1].size());
        g.add_edge(layer[l - 1][pick], v);
      }
    }
  }
  return g;
}

Dag erdos_dag(int n, double p, std::uint64_t seed, WeightRange w) {
  if (n < 1) throw std::invalid_argument("erdos_dag: n >= 1");
  Xoshiro256pp rng(seed);
  Dag g;
  g.reserve_tasks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    g.add_task("T" + std::to_string(i), draw_weight(rng, w));
  }
  // Random topological order, then forward edges with probability p.
  std::vector<TaskId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), TaskId{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      if (rng.bernoulli(p)) g.add_edge(order[i], order[j]);
    }
  }
  return g;
}

namespace {

/// Recursive SP builder: returns (entries, exits) of the composed block.
struct Block {
  std::vector<TaskId> entries;
  std::vector<TaskId> exits;
};

Block build_sp(Dag& g, int n, Xoshiro256pp& rng, const WeightRange& w,
               int depth) {
  if (n <= 1 || depth > 24) {
    const TaskId t = g.add_task(draw_weight(rng, w));
    return {{t}, {t}};
  }
  const int left_n = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
  const int right_n = n - left_n;
  Block a = build_sp(g, left_n, rng, w, depth + 1);
  Block b = build_sp(g, right_n, rng, w, depth + 1);
  if (rng.bernoulli(0.5)) {
    // Series: every exit of a precedes every entry of b. When both sides
    // have several boundary tasks the complete-bipartite join is vertex-SP
    // but not *edge*-SP in the activity-on-arc encoding; a zero-weight
    // junction task keeps makespan semantics identical while making the
    // AoA network fully reducible (so Dodin/SP evaluation stay exact).
    if (a.exits.size() > 1 && b.entries.size() > 1) {
      const TaskId junction = g.add_task(
          "JOIN_" + std::to_string(g.task_count()), 0.0);
      for (const TaskId u : a.exits) g.add_edge_unique(u, junction);
      for (const TaskId v : b.entries) g.add_edge_unique(junction, v);
    } else {
      for (const TaskId u : a.exits) {
        for (const TaskId v : b.entries) g.add_edge_unique(u, v);
      }
    }
    return {std::move(a.entries), std::move(b.exits)};
  }
  // Parallel: disjoint union.
  Block out;
  out.entries = std::move(a.entries);
  out.entries.insert(out.entries.end(), b.entries.begin(), b.entries.end());
  out.exits = std::move(a.exits);
  out.exits.insert(out.exits.end(), b.exits.begin(), b.exits.end());
  return out;
}

}  // namespace

Dag random_series_parallel(int n, std::uint64_t seed, WeightRange w) {
  if (n < 1) throw std::invalid_argument("random_series_parallel: n >= 1");
  Xoshiro256pp rng(seed);
  Dag g;
  build_sp(g, n, rng, w, 0);
  return g;
}

Dag chain_dag(int n, std::uint64_t seed, WeightRange w) {
  if (n < 1) throw std::invalid_argument("chain_dag: n >= 1");
  Xoshiro256pp rng(seed);
  Dag g;
  g.reserve_tasks(static_cast<std::size_t>(n));
  TaskId prev = graph::kNoTask;
  for (int i = 0; i < n; ++i) {
    const TaskId t = g.add_task("C" + std::to_string(i), draw_weight(rng, w));
    if (prev != graph::kNoTask) g.add_edge(prev, t);
    prev = t;
  }
  return g;
}

Dag uniform_chain(int n, double weight) {
  if (n < 1) throw std::invalid_argument("uniform_chain: n >= 1");
  Dag g;
  g.reserve_tasks(static_cast<std::size_t>(n));
  TaskId prev = graph::kNoTask;
  for (int i = 0; i < n; ++i) {
    const TaskId t = g.add_task("C" + std::to_string(i), weight);
    if (prev != graph::kNoTask) g.add_edge(prev, t);
    prev = t;
  }
  return g;
}

Dag fork_join_dag(int width, std::uint64_t seed, WeightRange w) {
  if (width < 1) throw std::invalid_argument("fork_join_dag: width >= 1");
  Xoshiro256pp rng(seed);
  Dag g;
  g.reserve_tasks(static_cast<std::size_t>(width) + 2);
  const TaskId src = g.add_task("FORK", draw_weight(rng, w));
  const TaskId dst = g.add_task("JOIN", draw_weight(rng, w));
  for (int i = 0; i < width; ++i) {
    const TaskId t = g.add_task("B" + std::to_string(i), draw_weight(rng, w));
    g.add_edge(src, t);
    g.add_edge(t, dst);
  }
  return g;
}

Dag uniform_fork_join(int width, double branch_weight,
                      double terminal_weight) {
  if (width < 1) throw std::invalid_argument("uniform_fork_join: width >= 1");
  Dag g;
  g.reserve_tasks(static_cast<std::size_t>(width) + 2);
  const TaskId src = g.add_task("FORK", terminal_weight);
  const TaskId dst = g.add_task("JOIN", terminal_weight);
  for (int i = 0; i < width; ++i) {
    const TaskId t = g.add_task("B" + std::to_string(i), branch_weight);
    g.add_edge(src, t);
    g.add_edge(t, dst);
  }
  return g;
}

Dag independent_tasks(int n, std::uint64_t seed, WeightRange w) {
  if (n < 1) throw std::invalid_argument("independent_tasks: n >= 1");
  Xoshiro256pp rng(seed);
  Dag g;
  g.reserve_tasks(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    g.add_task("I" + std::to_string(i), draw_weight(rng, w));
  }
  return g;
}

Dag tiled_fork_join(int stages, int width, int chain_len,
                    std::uint64_t seed, WeightRange w) {
  if (stages < 1 || width < 1 || chain_len < 1) {
    throw std::invalid_argument(
        "tiled_fork_join: stages, width, chain_len >= 1");
  }
  if (w.lo <= 0.0 || w.hi < w.lo) {
    throw std::invalid_argument("WeightRange: need 0 < lo <= hi");
  }
  Xoshiro256pp rng(seed);
  const std::size_t per_stage =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(chain_len) +
      2;
  const std::size_t n = static_cast<std::size_t>(stages) * per_stage;
  // Bulk path: one allocation per storage plane instead of n push_backs.
  Dag g = Dag::with_tasks(n, w.lo);
  if (w.hi > w.lo) {
    for (TaskId t = 0; t < n; ++t) {
      g.set_weight(t, w.lo + (w.hi - w.lo) * rng.uniform());
    }
  }
  TaskId prev_sink = graph::kNoTask;
  for (int s = 0; s < stages; ++s) {
    const TaskId base = static_cast<TaskId>(s * per_stage);
    const TaskId src = base;
    const TaskId sink = static_cast<TaskId>(base + per_stage - 1);
    g.set_weight(src, 0.0);
    g.set_weight(sink, 0.0);
    for (int c = 0; c < width; ++c) {
      TaskId prev = src;
      for (int k = 0; k < chain_len; ++k) {
        const TaskId t =
            static_cast<TaskId>(base + 1 + c * chain_len + k);
        g.add_edge(prev, t);
        prev = t;
      }
      g.add_edge(prev, sink);
    }
    if (prev_sink != graph::kNoTask) g.add_edge(prev_sink, src);
    prev_sink = sink;
  }
  return g;
}

Dag wheatstone_bridge(WeightRange w, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  Dag g;
  const TaskId a = g.add_task("A", draw_weight(rng, w));
  const TaskId b = g.add_task("B", draw_weight(rng, w));
  const TaskId c = g.add_task("C", draw_weight(rng, w));
  const TaskId d = g.add_task("D", draw_weight(rng, w));
  const TaskId e = g.add_task("E", draw_weight(rng, w));
  g.add_edge(a, c);
  g.add_edge(a, d);
  g.add_edge(b, d);
  g.add_edge(a, e);
  g.add_edge(b, e);
  return g;
}

}  // namespace expmk::gen
