#include "gen/cholesky.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace expmk::gen {

namespace {
std::string nm(const char* base, int a) {
  return std::string(base) + '_' + std::to_string(a);
}
std::string nm(const char* base, int a, int b) {
  return nm(base, a) + '_' + std::to_string(b);
}
std::string nm(const char* base, int a, int b, int c) {
  return nm(base, a, b) + '_' + std::to_string(c);
}
}  // namespace

std::size_t cholesky_task_count(int k) {
  const std::size_t n = static_cast<std::size_t>(k);
  return n + n * (n - 1) / 2 * 2 + n * (n - 1) * (n - 2) / 6;
}

graph::Dag cholesky_dag(int k, const CholeskyTimings& t) {
  if (k < 1) throw std::invalid_argument("cholesky_dag: k >= 1 required");
  using graph::TaskId;
  graph::Dag g;

  // Dense id tables; kNoTask marks "not a task" slots.
  const auto K = static_cast<std::size_t>(k);
  std::vector<TaskId> potrf(K, graph::kNoTask);
  std::vector<std::vector<TaskId>> trsm(K, std::vector<TaskId>(K, graph::kNoTask));
  std::vector<std::vector<TaskId>> syrk(K, std::vector<TaskId>(K, graph::kNoTask));
  // gemm[i][j][l], i > j > l
  std::vector<std::vector<std::vector<TaskId>>> gemm(
      K, std::vector<std::vector<TaskId>>(K, std::vector<TaskId>(K, graph::kNoTask)));

  for (int j = 0; j < k; ++j) {
    potrf[j] = g.add_task(nm("POTRF", j), t.potrf);
    for (int i = j + 1; i < k; ++i) {
      trsm[i][j] = g.add_task(nm("TRSM", i, j), t.trsm);
      syrk[i][j] = g.add_task(nm("SYRK", i, j), t.syrk);
    }
    for (int jj = j + 1; jj < k; ++jj) {
      for (int i = jj + 1; i < k; ++i) {
        gemm[i][jj][j] = g.add_task(nm("GEMM", i, jj, j), t.gemm);
      }
    }
  }

  for (int j = 0; j < k; ++j) {
    if (j > 0) g.add_edge(syrk[j][j - 1], potrf[j]);
    for (int i = j + 1; i < k; ++i) {
      g.add_edge(potrf[j], trsm[i][j]);
      if (j > 0) g.add_edge(gemm[i][j][j - 1], trsm[i][j]);
      g.add_edge(trsm[i][j], syrk[i][j]);
      if (j > 0) g.add_edge(syrk[i][j - 1], syrk[i][j]);
    }
    for (int jj = j + 1; jj < k; ++jj) {
      for (int i = jj + 1; i < k; ++i) {
        g.add_edge(trsm[i][j], gemm[i][jj][j]);
        g.add_edge(trsm[jj][j], gemm[i][jj][j]);
        if (j > 0) g.add_edge(gemm[i][jj][j - 1], gemm[i][jj][j]);
      }
    }
  }
  return g;
}

}  // namespace expmk::gen
