// gen/cholesky.hpp
//
// Task graph of the right-looking tiled Cholesky factorization of a k x k
// tile matrix (the paper's first DAG class; Figure 1 shows k = 5).
//
// Tasks and dependencies (0-based tile indices, j = elimination step):
//   POTRF_j            factor diagonal tile (j,j)
//   TRSM_i_j   (i > j) triangular solve on tile (i,j)
//   SYRK_i_j   (i > j) symmetric update of diagonal tile (i,i) by (i,j)
//   GEMM_i_j_l (i>j>l) update of tile (i,j) by tiles (i,l) and (j,l)
//
//   POTRF_j    <- SYRK_j_{j-1}                      (j > 0)
//   TRSM_i_j   <- POTRF_j, GEMM_i_j_{j-1}           (latter if j > 0)
//   SYRK_i_j   <- TRSM_i_j, SYRK_i_{j-1}            (latter if j > 0)
//   GEMM_i_j_l <- TRSM_i_l, TRSM_j_l, GEMM_i_j_{l-1} (latter if l > 0)
//
// Task count: k + 2*C(k,2) + C(k,3)  (= 35 for k = 5, matching Figure 1;
// 364 for k = 12; the paper's "1/3 k^3 + O(k^2)" headline refers to the
// same cubic growth).

#pragma once

#include "gen/kernels.hpp"
#include "graph/dag.hpp"

namespace expmk::gen {

/// Builds the Cholesky DAG for a k x k tile matrix. k >= 1.
[[nodiscard]] graph::Dag cholesky_dag(int k,
                                      const CholeskyTimings& timings = {});

/// Closed-form task count of cholesky_dag(k).
[[nodiscard]] std::size_t cholesky_task_count(int k);

}  // namespace expmk::gen
