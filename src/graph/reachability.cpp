#include "graph/reachability.hpp"

#include <bit>

#include "graph/topological.hpp"

namespace expmk::graph {

Reachability::Reachability(const Dag& g)
    : n_(g.task_count()), stride_((n_ + 63) / 64), rows_(n_ * stride_, 0) {
  // Process vertices in reverse topological order: row(u) = union over
  // successors s of (row(s) | bit(s)).
  const auto topo = topological_order(g);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId u = *it;
    std::uint64_t* row = &rows_[u * stride_];
    for (const TaskId s : g.successors(u)) {
      const std::uint64_t* srow = &rows_[s * stride_];
      for (std::size_t w = 0; w < stride_; ++w) row[w] |= srow[w];
      row[s >> 6] |= 1ULL << (s & 63);
    }
  }
}

std::size_t Reachability::descendant_count(TaskId u) const {
  std::size_t count = 0;
  const std::uint64_t* row = &rows_[u * stride_];
  for (std::size_t w = 0; w < stride_; ++w) {
    count += static_cast<std::size_t>(std::popcount(row[w]));
  }
  return count;
}

Dag transitive_reduction(const Dag& g) {
  const Reachability reach(g);
  Dag out;
  for (TaskId v = 0; v < g.task_count(); ++v) {
    out.add_task(std::string(g.name(v)), g.weight(v));
  }
  for (TaskId u = 0; u < g.task_count(); ++u) {
    for (const TaskId v : g.successors(u)) {
      // (u,v) is redundant iff some *other* successor s of u reaches v.
      bool redundant = false;
      for (const TaskId s : g.successors(u)) {
        if (s != v && (s == v || reach.reaches(s, v))) {
          redundant = true;
          break;
        }
      }
      if (!redundant) out.add_edge_unique(u, v);
    }
  }
  return out;
}

std::size_t redundant_edge_count(const Dag& g) {
  const Dag reduced = transitive_reduction(g);
  return g.edge_count() - reduced.edge_count();
}

}  // namespace expmk::graph
