// graph/dot.hpp
//
// Graphviz DOT export. The paper's Figures 1-3 are drawings of the k=5
// Cholesky/LU/QR DAGs; examples/factorization_gallery regenerates them as
// .dot files with one fill color per BLAS kernel family.

#pragma once

#include <iosfwd>
#include <string>

#include "graph/dag.hpp"

namespace expmk::graph {

/// Export options.
struct DotOptions {
  /// Graph name in the DOT header.
  std::string graph_name = "taskgraph";
  /// Color nodes by the prefix of their name before the first '_' (BLAS
  /// kernel family). Unknown prefixes get white.
  bool color_by_kernel = true;
  /// Append the task weight to the label, e.g. "GEMM_3_2_1\n0.187s".
  bool show_weights = false;
  /// Emit the transitive reduction instead of the raw edge set (matches
  /// how the paper's figures are drawn).
  bool reduce_edges = false;
};

/// Writes the DOT representation of `g` to `os`.
void write_dot(std::ostream& os, const Dag& g, const DotOptions& options = {});

/// Renders to a string (test helper).
[[nodiscard]] std::string to_dot(const Dag& g, const DotOptions& options = {});

}  // namespace expmk::graph
