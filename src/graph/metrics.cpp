#include "graph/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "graph/longest_path.hpp"
#include "graph/topological.hpp"

namespace expmk::graph {

std::vector<std::vector<TaskId>> level_partition(const Dag& g) {
  const auto topo = topological_order(g);
  std::vector<std::size_t> level(g.task_count(), 0);
  std::size_t max_level = 0;
  for (const TaskId v : topo) {
    for (const TaskId u : g.predecessors(v)) {
      level[v] = std::max(level[v], level[u] + 1);
    }
    max_level = std::max(max_level, level[v]);
  }
  std::vector<std::vector<TaskId>> out(g.task_count() ? max_level + 1 : 0);
  for (TaskId v = 0; v < g.task_count(); ++v) out[level[v]].push_back(v);
  return out;
}

DagMetrics compute_metrics(const Dag& g) {
  DagMetrics m;
  m.tasks = g.task_count();
  m.edges = g.edge_count();
  if (m.tasks == 0) return m;

  m.entries = g.entry_tasks().size();
  m.exits = g.exit_tasks().size();
  m.total_work = g.total_weight();
  m.critical_path = critical_path_length(g);
  m.average_parallelism =
      m.critical_path > 0.0 ? m.total_work / m.critical_path : 0.0;

  const auto levels = level_partition(g);
  m.depth = levels.size();
  for (const auto& l : levels) {
    m.max_level_width = std::max(m.max_level_width, l.size());
  }

  std::size_t total_out = 0;
  for (TaskId v = 0; v < g.task_count(); ++v) {
    total_out += g.out_degree(v);
    m.max_out_degree = std::max(m.max_out_degree, g.out_degree(v));
    m.max_in_degree = std::max(m.max_in_degree, g.in_degree(v));
  }
  m.mean_out_degree =
      static_cast<double>(total_out) / static_cast<double>(m.tasks);
  if (m.tasks >= 2) {
    m.density = static_cast<double>(m.edges) /
                (static_cast<double>(m.tasks) *
                 static_cast<double>(m.tasks - 1) / 2.0);
  }
  return m;
}

std::ostream& operator<<(std::ostream& os, const DagMetrics& m) {
  os << "tasks=" << m.tasks << " edges=" << m.edges
     << " entries=" << m.entries << " exits=" << m.exits
     << " depth=" << m.depth << " max_width=" << m.max_level_width << '\n'
     << "work=" << m.total_work << " critical_path=" << m.critical_path
     << " avg_parallelism=" << m.average_parallelism << '\n'
     << "mean_out_degree=" << m.mean_out_degree
     << " max_out=" << m.max_out_degree << " max_in=" << m.max_in_degree
     << " density=" << m.density << '\n';
  return os;
}

}  // namespace expmk::graph
