// graph/sp_tree.hpp
//
// Hierarchical series-parallel (modular) decomposition of a task DAG.
//
// sp_collapse repeatedly contracts two exact makespan-preserving patterns
// until neither applies:
//
//   * SERIES   u -> v with out-degree(u) == 1 and in-degree(v) == 1:
//     the pair behaves like one task whose duration is the SUM of the two
//     (distribution: convolution) — v can start exactly when u finishes
//     and nothing else observes u.
//
//   * PARALLEL u, v with identical predecessor sets AND identical
//     successor sets: both start at the same instant (max over the shared
//     predecessors) and everything downstream waits for both, so the pair
//     behaves like one task whose duration is the MAX of the two
//     (distribution: max of independents). The empty pred/succ set cases
//     are included: co-entry twins share start 0, co-exit twins feed the
//     overall makespan max.
//
// Both identities are exact for independent task durations — which is the
// model: per-task failure/retry processes are independent. The result is
// a forest of composite modules (the SP tree) plus the QUOTIENT DAG whose
// nodes are the surviving modules. On a series-parallel graph the
// quotient is a single node; on library kernels (LU/QR/Cholesky) large
// repetitive regions collapse so the quotient is far smaller than the
// input; on an irreducible graph (e.g. the Wheatstone bridge core) the
// quotient equals the input and nothing is lost.
//
// The decomposition is a pure function of the adjacency STRUCTURE (never
// of weights or rates), so one SpDecomposition is shared by a Scenario
// and all of its patch() clones. Module makespan distributions are built
// bottom-up by exp::hier, memoized on a content hash of (structure,
// weights, rates, retry, atom budget) so identical modules — the point of
// repetitive kernels — are evaluated once per process.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.hpp"

namespace expmk::graph {

struct SpDecomposition {
  enum class Kind : std::uint8_t { Leaf, Series, Parallel };

  /// One node of the module forest. Children of composite modules are
  /// stored as spans into `children`; the modules vector is ordered
  /// children-before-parents (leaves first, then composites as built),
  /// so a single ascending pass evaluates bottom-up.
  struct Module {
    Kind kind = Kind::Leaf;
    TaskId task = kNoTask;          ///< Leaf: the original task id
    std::uint32_t first_child = 0;  ///< composite: offset into children
    std::uint32_t child_count = 0;  ///< composite: number of children
  };

  std::vector<Module> modules;         ///< leaves 0..n-1, then composites
  std::vector<std::uint32_t> children; ///< concatenated child module ids

  /// The quotient DAG: one node per surviving (top-level) module, edges
  /// inherited from the input. Node weights are the SUM of the module's
  /// task weights (so the quotient is a valid Dag for structural code);
  /// evaluation injects full distributions instead.
  Dag quotient;
  /// quotient node id -> module id.
  std::vector<std::uint32_t> quotient_module;

  /// Original tasks absorbed into composite modules
  /// (= task_count - quotient.task_count()).
  std::size_t collapsed_tasks = 0;
};

/// Runs the collapse to fixpoint; O(passes * (V + E)), deterministic.
[[nodiscard]] SpDecomposition sp_collapse(const Dag& g);

/// All original task ids inside `module`, ascending. Test/debug helper.
[[nodiscard]] std::vector<TaskId> module_tasks(const SpDecomposition& d,
                                               std::uint32_t module);

}  // namespace expmk::graph
