#include "graph/sp_tree.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace expmk::graph {

namespace {

/// FNV-1a over a sequence of u32 — the grouping key for the parallel
/// pass. Collisions are survivable: groups are re-verified by comparing
/// the actual sorted adjacency before merging.
std::uint64_t hash_adjacency(const std::vector<std::uint32_t>& preds,
                             const std::vector<std::uint32_t>& succs) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      h ^= (v >> (8 * i)) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint32_t>(preds.size()));
  for (const std::uint32_t p : preds) mix(p);
  mix(0xffffffffU);  // separator: ({a},{}) must differ from ({},{a})
  for (const std::uint32_t s : succs) mix(s);
  return h;
}

void erase_value(std::vector<std::uint32_t>& v, std::uint32_t x) {
  v.erase(std::remove(v.begin(), v.end(), x), v.end());
}

}  // namespace

SpDecomposition sp_collapse(const Dag& g) {
  const std::size_t n = g.task_count();
  SpDecomposition d;
  d.modules.reserve(2 * n);
  d.modules.resize(n);
  std::vector<double> mod_weight(n);
  for (TaskId t = 0; t < n; ++t) {
    d.modules[t] = {SpDecomposition::Kind::Leaf, t, 0, 0};
    mod_weight[t] = g.weight(t);
  }

  // Working graph: node i starts as task i; merges keep the surviving
  // node's index, so node indices stay ascending-deterministic.
  std::vector<std::vector<std::uint32_t>> succ(n), pred(n);
  for (TaskId t = 0; t < n; ++t) {
    succ[t].assign(g.successors(t).begin(), g.successors(t).end());
    pred[t].assign(g.predecessors(t).begin(), g.predecessors(t).end());
  }
  std::vector<std::uint32_t> module(n);
  for (std::uint32_t i = 0; i < n; ++i) module[i] = i;
  std::vector<char> alive(n, 1);

  const auto make_composite = [&](SpDecomposition::Kind kind,
                                  const std::uint32_t* child_nodes,
                                  std::uint32_t count) -> std::uint32_t {
    const auto id = static_cast<std::uint32_t>(d.modules.size());
    SpDecomposition::Module m;
    m.kind = kind;
    m.first_child = static_cast<std::uint32_t>(d.children.size());
    m.child_count = count;
    double w = 0.0;
    for (std::uint32_t c = 0; c < count; ++c) {
      d.children.push_back(module[child_nodes[c]]);
      w += mod_weight[module[child_nodes[c]]];
    }
    d.modules.push_back(m);
    mod_weight.push_back(w);
    return id;
  };

  // Series pass: absorb maximal chains in one sweep. After u absorbs v,
  // u inherits v's successors, so the while loop keeps absorbing and a
  // whole chain contracts in a single pass.
  const auto series_pass = [&]() -> bool {
    bool changed = false;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!alive[u]) continue;
      while (succ[u].size() == 1) {
        const std::uint32_t v = succ[u][0];
        if (pred[v].size() != 1) break;
        const std::uint32_t pair[2] = {u, v};
        module[u] = make_composite(SpDecomposition::Kind::Series, pair, 2);
        succ[u] = std::move(succ[v]);
        for (const std::uint32_t w : succ[u]) {
          std::replace(pred[w].begin(), pred[w].end(), v, u);
        }
        alive[v] = 0;
        succ[v].clear();
        pred[v].clear();
        changed = true;
      }
    }
    return changed;
  };

  // Parallel pass: group alive nodes by (sorted preds, sorted succs) and
  // fuse each group into its lowest-index member. Grouping goes through a
  // hash only to find candidates; the sorted adjacency itself is compared
  // before fusing (hash collisions must not merge distinct signatures).
  std::vector<std::vector<std::uint32_t>> sorted_pred(n), sorted_succ(n);
  const auto parallel_pass = [&]() -> bool {
    bool changed = false;
    std::map<std::uint64_t, std::vector<std::uint32_t>> groups;
    for (std::uint32_t u = 0; u < n; ++u) {
      if (!alive[u]) continue;
      sorted_pred[u] = pred[u];
      sorted_succ[u] = succ[u];
      std::sort(sorted_pred[u].begin(), sorted_pred[u].end());
      std::sort(sorted_succ[u].begin(), sorted_succ[u].end());
      groups[hash_adjacency(sorted_pred[u], sorted_succ[u])].push_back(u);
    }
    std::vector<std::uint32_t> twins;
    for (auto& [h, nodes] : groups) {
      if (nodes.size() < 2) continue;
      std::vector<char> taken(nodes.size(), 0);
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (taken[i]) continue;
        const std::uint32_t u = nodes[i];
        twins.clear();
        twins.push_back(u);
        for (std::size_t j = i + 1; j < nodes.size(); ++j) {
          if (taken[j]) continue;
          const std::uint32_t v = nodes[j];
          if (sorted_pred[v] == sorted_pred[u] &&
              sorted_succ[v] == sorted_succ[u]) {
            twins.push_back(v);
            taken[j] = 1;
          }
        }
        if (twins.size() < 2) continue;
        module[u] = make_composite(SpDecomposition::Kind::Parallel,
                                   twins.data(),
                                   static_cast<std::uint32_t>(twins.size()));
        for (std::size_t k = 1; k < twins.size(); ++k) {
          const std::uint32_t v = twins[k];
          for (const std::uint32_t p : pred[v]) erase_value(succ[p], v);
          for (const std::uint32_t s : succ[v]) erase_value(pred[s], v);
          alive[v] = 0;
          succ[v].clear();
          pred[v].clear();
        }
        changed = true;
      }
    }
    return changed;
  };

  bool changed = n > 0;
  while (changed) {
    changed = series_pass();
    changed = parallel_pass() || changed;
  }

  // Quotient: surviving nodes in ascending index order.
  std::vector<std::uint32_t> qid(n, kNoTask);
  d.quotient.reserve_tasks(n);  // upper bound; cheap relative to the pass
  for (std::uint32_t u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    qid[u] = d.quotient.add_task(mod_weight[module[u]]);
    d.quotient_module.push_back(module[u]);
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    for (const std::uint32_t v : succ[u]) {
      d.quotient.add_edge(qid[u], qid[v]);
    }
  }
  d.collapsed_tasks = n - d.quotient.task_count();
  return d;
}

std::vector<TaskId> module_tasks(const SpDecomposition& d,
                                 std::uint32_t module) {
  std::vector<TaskId> out;
  std::vector<std::uint32_t> stack{module};
  while (!stack.empty()) {
    const std::uint32_t m = stack.back();
    stack.pop_back();
    const SpDecomposition::Module& mod = d.modules.at(m);
    if (mod.kind == SpDecomposition::Kind::Leaf) {
      out.push_back(mod.task);
      continue;
    }
    for (std::uint32_t c = 0; c < mod.child_count; ++c) {
      stack.push_back(d.children[mod.first_child + c]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace expmk::graph
