#include "graph/validate.hpp"

#include <algorithm>
#include <numeric>

#include "graph/topological.hpp"

namespace expmk::graph {

namespace {

/// Union-find for the weak-connectivity count.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), TaskId{0});
  }
  TaskId find(TaskId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(TaskId a, TaskId b) { parent_[find(a)] = find(b); }

 private:
  std::vector<TaskId> parent_;
};

}  // namespace

ValidationReport validate(const Dag& g) {
  ValidationReport report;
  const std::size_t n = g.task_count();

  if (n == 0) {
    report.problems.emplace_back("graph has no tasks");
    return report;
  }

  report.acyclic = try_topological_order(g).has_value();
  if (!report.acyclic) report.problems.emplace_back("graph contains a cycle");

  for (TaskId v = 0; v < n; ++v) {
    if (g.weight(v) < 0.0) {
      report.weights_nonnegative = false;
      report.problems.push_back("task " + std::to_string(v) +
                                " has negative weight");
    }
  }

  for (TaskId u = 0; u < n; ++u) {
    auto succ = g.successors(u);
    std::vector<TaskId> sorted(succ.begin(), succ.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      report.has_duplicate_edges = true;
      report.problems.push_back("duplicate edge out of task " +
                                std::to_string(u));
    }
  }

  report.entry_count = g.entry_tasks().size();
  report.exit_count = g.exit_tasks().size();
  if (report.entry_count == 0) {
    report.problems.emplace_back("graph has no entry task");
  }

  DisjointSets sets(n);
  for (TaskId u = 0; u < n; ++u) {
    for (const TaskId v : g.successors(u)) sets.unite(u, v);
  }
  std::vector<bool> seen(n, false);
  for (TaskId v = 0; v < n; ++v) {
    const TaskId root = sets.find(v);
    if (!seen[root]) {
      seen[root] = true;
      ++report.component_count;
    }
  }
  return report;
}

}  // namespace expmk::graph
