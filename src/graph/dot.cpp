#include "graph/dot.hpp"

#include <map>
#include <ostream>
#include <sstream>

#include "graph/reachability.hpp"

namespace expmk::graph {

namespace {

std::string kernel_prefix(std::string_view name) {
  const auto pos = name.find('_');
  return std::string(name.substr(0, pos));
}

std::string color_for(const std::string& prefix) {
  // One pastel per kernel family across all three factorizations.
  static const std::map<std::string, std::string> palette = {
      {"POTRF", "#ffd29b"}, {"TRSM", "#a8d5a2"},  {"SYRK", "#9fc5e8"},
      {"GEMM", "#f4cccc"},  {"GETRF", "#ffd29b"}, {"TRSML", "#a8d5a2"},
      {"TRSMU", "#b6d7a8"}, {"GEQRT", "#ffd29b"}, {"TSQRT", "#a8d5a2"},
      {"UNMQR", "#9fc5e8"}, {"TSMQR", "#f4cccc"},
  };
  const auto it = palette.find(prefix);
  return it == palette.end() ? "#ffffff" : it->second;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const Dag& g, const DotOptions& options) {
  const Dag* graph = &g;
  Dag reduced;
  if (options.reduce_edges) {
    reduced = transitive_reduction(g);
    graph = &reduced;
  }

  os << "digraph " << options.graph_name << " {\n";
  os << "  rankdir=TB;\n  node [shape=box, style=filled];\n";
  for (TaskId v = 0; v < graph->task_count(); ++v) {
    std::string label(graph->name(v));
    if (label.empty()) label = "t" + std::to_string(v);
    std::ostringstream full_label;
    full_label << escape(label);
    if (options.show_weights) {
      full_label << "\\n" << graph->weight(v) << "s";
    }
    os << "  n" << v << " [label=\"" << full_label.str() << '"';
    if (options.color_by_kernel && !std::string(graph->name(v)).empty()) {
      os << ", fillcolor=\"" << color_for(kernel_prefix(graph->name(v)))
         << '"';
    } else {
      os << ", fillcolor=\"#ffffff\"";
    }
    os << "];\n";
  }
  for (TaskId u = 0; u < graph->task_count(); ++u) {
    for (const TaskId v : graph->successors(u)) {
      os << "  n" << u << " -> n" << v << ";\n";
    }
  }
  os << "}\n";
}

std::string to_dot(const Dag& g, const DotOptions& options) {
  std::ostringstream os;
  write_dot(os, g, options);
  return os.str();
}

}  // namespace expmk::graph
