// graph/level_sets.hpp
//
// Level-partition schedule for parallel sweeps over a CsrDag.
//
// A "level" here is the hop depth: forward level(v) = 1 + max level over
// predecessors (0 for entries), backward level symmetric over successors.
// Hop levels depend only on the adjacency structure — not on weights —
// so one LevelSets is shared by a Scenario and every patch() clone of it.
//
// The schedule is pre-chunked: each level's vertex list (CSR positions,
// ascending within a level) is cut into fixed-size chunks recorded in a
// single flat chunk table. The chunk boundaries are a pure function of
// the graph and kLevelChunk — NEVER of the worker count — which is what
// makes the level-parallel sweeps bit-identical for 1, 2, or 7 threads
// (the same discipline as the MC engine's 128-chunk partition): workers
// claim chunks from an atomic cursor, but every chunk computes exactly
// the same values into disjoint slots, and reductions fold chunk results
// in chunk-index order on the calling thread.
//
// Vertices within a forward chunk depend only on vertices in strictly
// earlier forward levels (and symmetrically backward), so a chunk may run
// as soon as all chunks of earlier levels have completed — the gating
// exp::lp::run_leveled enforces.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace expmk::graph {

/// Fixed vertex count per chunk. Small enough to balance skewed levels
/// across workers, large enough that the per-chunk claim (one atomic
/// fetch_add) is noise.
inline constexpr std::uint32_t kLevelChunk = 256;

/// One direction's chunked level schedule.
struct LevelChunks {
  /// CSR positions grouped by level, ascending position within a level.
  std::vector<std::uint32_t> order;
  /// chunk c covers order[chunk_begin[c] .. chunk_begin[c+1]). Size C+1.
  std::vector<std::uint32_t> chunk_begin;
  /// Level of chunk c (chunks are emitted level by level). Size C.
  std::vector<std::uint32_t> chunk_level;
  /// Number of chunks in each level (completion bookkeeping). Size L.
  std::vector<std::uint32_t> level_chunks;

  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunk_level.size();
  }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_chunks.size();
  }
};

/// Forward (by predecessor depth) and backward (by successor depth)
/// schedules for one graph.
struct LevelSets {
  LevelChunks fwd;
  LevelChunks bwd;
};

/// Builds both schedules; O(V + E), allocates the schedule arrays.
[[nodiscard]] LevelSets build_level_sets(const CsrDag& g,
                                         std::uint32_t chunk = kLevelChunk);

}  // namespace expmk::graph
