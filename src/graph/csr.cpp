#include "graph/csr.hpp"

#include <limits>
#include <stdexcept>
#include <type_traits>

#include "graph/topological.hpp"

namespace expmk::graph {

CsrDag::CsrDag(const Dag& g) {
  const std::size_t n = g.task_count();
  order_ = topological_order(g);  // throws on cycle
  position_.resize(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    position_[order_[pos]] = pos;
  }

  weights_.resize(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    weights_[pos] = g.weight(order_[pos]);
  }

  pred_offsets_.assign(n + 1, 0);
  succ_offsets_.assign(n + 1, 0);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const TaskId id = order_[pos];
    pred_offsets_[pos + 1] =
        pred_offsets_[pos] + static_cast<std::uint32_t>(g.in_degree(id));
    succ_offsets_[pos + 1] =
        succ_offsets_[pos] + static_cast<std::uint32_t>(g.out_degree(id));
  }

  pred_index_.resize(pred_offsets_[n]);
  succ_index_.resize(succ_offsets_[n]);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const TaskId id = order_[pos];
    std::uint32_t cursor = pred_offsets_[pos];
    for (const TaskId u : g.predecessors(id)) {
      pred_index_[cursor++] = position_[u];
    }
    cursor = succ_offsets_[pos];
    for (const TaskId w : g.successors(id)) {
      succ_index_[cursor++] = position_[w];
    }
  }
}

CsrDag::CsrDag(const CsrDag& base, std::span<const double> weights_by_id)
    : weights_(base.weights_.size()),
      order_(base.order_),
      position_(base.position_),
      pred_offsets_(base.pred_offsets_),
      pred_index_(base.pred_index_),
      succ_offsets_(base.succ_offsets_),
      succ_index_(base.succ_index_) {
  if (weights_by_id.size() != base.task_count()) {
    throw std::invalid_argument(
        "CsrDag reweight: weights size mismatch with task count");
  }
  for (std::uint32_t pos = 0; pos < weights_.size(); ++pos) {
    weights_[pos] = weights_by_id[order_[pos]];
  }
}

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

EXPMK_NOALLOC void check_scratch(const CsrDag& g, std::span<const double> weights,
                   std::span<const double> scratch) {
  if (weights.size() != g.task_count() || scratch.size() != g.task_count()) {
    throw std::invalid_argument(
        "csr: weights/scratch size mismatch with task count");
  }
}
}  // namespace

EXPMK_NOALLOC double critical_path_length(const CsrDag& g, std::span<const double> weights,
                            std::span<double> finish) {
  check_scratch(g, weights, finish);
  const std::size_t n = g.task_count();
  const std::span<const std::uint32_t> off = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();
  double best = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    double start = 0.0;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
      const double f = finish[pred[e]];
      if (f > start) start = f;
    }
    const double fv = start + weights[v];
    finish[v] = fv;
    if (fv > best) best = fv;
  }
  return best;
}

EXPMK_NOALLOC void longest_from(const CsrDag& g, std::uint32_t source,
                  std::span<const double> weights, std::span<double> dist) {
  check_scratch(g, weights, dist);
  const std::size_t n = g.task_count();
  if (source >= n) {
    throw std::out_of_range("csr longest_from: invalid source");
  }
  const std::span<const std::uint32_t> off = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();
  dist[source] = weights[source];
  // Positions after `source` are the only candidates (topological
  // renumbering); a predecessor below `source` is unreachable from it, so
  // its (stale) dist entry must be ignored rather than read.
  for (std::uint32_t v = source + 1; v < n; ++v) {
    double best = kNegInf;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
      const std::uint32_t u = pred[e];
      if (u < source) continue;
      const double d = dist[u];
      if (d > best) best = d;
    }
    dist[v] = best == kNegInf ? kNegInf : best + weights[v];
  }
}

EXPMK_NOALLOC void longest_from_block(const CsrDag& g, std::uint32_t base,
                        std::uint32_t nlanes, std::span<const double> weights,
                        std::span<double> dist) {
  const std::size_t n = g.task_count();
  if (weights.size() != n) {
    throw std::invalid_argument(
        "csr longest_from_block: weights size mismatch with task count");
  }
  if (nlanes == 0 || base + nlanes > n) {
    throw std::out_of_range("csr longest_from_block: invalid source block");
  }
  if (dist.size() < n * static_cast<std::size_t>(nlanes)) {
    throw std::invalid_argument(
        "csr longest_from_block: dist scratch too small");
  }
  const std::span<const std::uint32_t> off = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();

  // Head region [base, base + nlanes): lanes are still crossing their own
  // sources, so run the exact per-lane scalar recurrence (tiny: at most
  // nlanes^2 entries). Positions below a lane's source are seeded with
  // -infinity — the arithmetic realization of longest_from's "skip
  // predecessors below the source".
  const std::uint32_t head_end = base + nlanes;
  for (std::uint32_t v = base; v < head_end; ++v) {
    for (std::uint32_t l = 0; l < nlanes; ++l) {
      const std::uint32_t s = base + l;
      double out;
      if (v < s) {
        out = kNegInf;
      } else if (v == s) {
        out = weights[v];
      } else {
        double best = kNegInf;
        for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
          const std::uint32_t u = pred[e];
          if (u < base) continue;  // below every lane's source
          const double d = dist[u * nlanes + l];
          if (d > best) best = d;
        }
        out = best == kNegInf ? kNegInf : best + weights[v];
      }
      dist[v * nlanes + l] = out;
    }
  }

  // Tail region: every lane is past its source, so the recurrence is
  // uniform across lanes and the edge pass is shared — one read of the
  // predecessor list serves all nlanes sources. `best + w` with
  // best = -inf yields -inf for finite task weights, which is bit-for-bit
  // the scalar path's explicit unreachable check. The full-width case
  // runs with a compile-time lane count so the per-lane max/add loops
  // vectorize (ternary selects, not conditional stores); the generic
  // fallback is the identical code with a runtime trip count.
  auto tail = [&](auto width, std::uint32_t lanes) {
    constexpr std::uint32_t kW = decltype(width)::value;
    const std::uint32_t nl = kW != 0 ? kW : lanes;
    for (std::uint32_t v = head_end; v < n; ++v) {
      double* dv = &dist[v * nl];
      for (std::uint32_t l = 0; l < nl; ++l) dv[l] = kNegInf;
      for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
        const std::uint32_t u = pred[e];
        if (u < base) continue;
        const double* du = &dist[u * nl];
        for (std::uint32_t l = 0; l < nl; ++l) {
          dv[l] = du[l] > dv[l] ? du[l] : dv[l];
        }
      }
      const double wv = weights[v];
      for (std::uint32_t l = 0; l < nl; ++l) {
        dv[l] = dv[l] == kNegInf ? kNegInf : dv[l] + wv;
      }
    }
  };
  if (nlanes == 8) {
    tail(std::integral_constant<std::uint32_t, 8>{}, nlanes);
  } else {
    tail(std::integral_constant<std::uint32_t, 0>{}, nlanes);
  }
}

EXPMK_NOALLOC double compute_levels(const CsrDag& g, std::span<const double> weights,
                      std::span<double> top, std::span<double> bottom) {
  check_scratch(g, weights, top);
  check_scratch(g, weights, bottom);
  const std::size_t n = g.task_count();
  const std::span<const std::uint32_t> poff = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();
  const std::span<const std::uint32_t> soff = g.succ_offsets();
  const std::span<const std::uint32_t> succ = g.succ_index();
  for (std::uint32_t v = 0; v < n; ++v) {
    double t = 0.0;
    for (std::uint32_t e = poff[v]; e < poff[v + 1]; ++e) {
      const std::uint32_t u = pred[e];
      const double cand = top[u] + weights[u];
      if (cand > t) t = cand;
    }
    top[v] = t;
  }
  double d = 0.0;
  for (std::uint32_t v = static_cast<std::uint32_t>(n); v-- > 0;) {
    double below = 0.0;
    for (std::uint32_t e = soff[v]; e < soff[v + 1]; ++e) {
      if (bottom[succ[e]] > below) below = bottom[succ[e]];
    }
    bottom[v] = below + weights[v];
    const double through = top[v] + bottom[v];
    if (through > d) d = through;
  }
  return d;
}

}  // namespace expmk::graph
