#include "graph/csr.hpp"

#include <limits>
#include <stdexcept>

#include "graph/topological.hpp"

namespace expmk::graph {

CsrDag::CsrDag(const Dag& g) {
  const std::size_t n = g.task_count();
  order_ = topological_order(g);  // throws on cycle
  position_.resize(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    position_[order_[pos]] = pos;
  }

  weights_.resize(n);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    weights_[pos] = g.weight(order_[pos]);
  }

  pred_offsets_.assign(n + 1, 0);
  succ_offsets_.assign(n + 1, 0);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const TaskId id = order_[pos];
    pred_offsets_[pos + 1] =
        pred_offsets_[pos] + static_cast<std::uint32_t>(g.in_degree(id));
    succ_offsets_[pos + 1] =
        succ_offsets_[pos] + static_cast<std::uint32_t>(g.out_degree(id));
  }

  pred_index_.resize(pred_offsets_[n]);
  succ_index_.resize(succ_offsets_[n]);
  for (std::uint32_t pos = 0; pos < n; ++pos) {
    const TaskId id = order_[pos];
    std::uint32_t cursor = pred_offsets_[pos];
    for (const TaskId u : g.predecessors(id)) {
      pred_index_[cursor++] = position_[u];
    }
    cursor = succ_offsets_[pos];
    for (const TaskId w : g.successors(id)) {
      succ_index_[cursor++] = position_[w];
    }
  }
}

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void check_scratch(const CsrDag& g, std::span<const double> weights,
                   std::span<const double> scratch) {
  if (weights.size() != g.task_count() || scratch.size() != g.task_count()) {
    throw std::invalid_argument(
        "csr: weights/scratch size mismatch with task count");
  }
}
}  // namespace

double critical_path_length(const CsrDag& g, std::span<const double> weights,
                            std::span<double> finish) {
  check_scratch(g, weights, finish);
  const std::size_t n = g.task_count();
  const std::span<const std::uint32_t> off = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();
  double best = 0.0;
  for (std::uint32_t v = 0; v < n; ++v) {
    double start = 0.0;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
      const double f = finish[pred[e]];
      if (f > start) start = f;
    }
    const double fv = start + weights[v];
    finish[v] = fv;
    if (fv > best) best = fv;
  }
  return best;
}

void longest_from(const CsrDag& g, std::uint32_t source,
                  std::span<const double> weights, std::span<double> dist) {
  check_scratch(g, weights, dist);
  const std::size_t n = g.task_count();
  if (source >= n) {
    throw std::out_of_range("csr longest_from: invalid source");
  }
  const std::span<const std::uint32_t> off = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();
  dist[source] = weights[source];
  // Positions after `source` are the only candidates (topological
  // renumbering); a predecessor below `source` is unreachable from it, so
  // its (stale) dist entry must be ignored rather than read.
  for (std::uint32_t v = source + 1; v < n; ++v) {
    double best = kNegInf;
    for (std::uint32_t e = off[v]; e < off[v + 1]; ++e) {
      const std::uint32_t u = pred[e];
      if (u < source) continue;
      const double d = dist[u];
      if (d > best) best = d;
    }
    dist[v] = best == kNegInf ? kNegInf : best + weights[v];
  }
}

double compute_levels(const CsrDag& g, std::span<const double> weights,
                      std::span<double> top, std::span<double> bottom) {
  check_scratch(g, weights, top);
  check_scratch(g, weights, bottom);
  const std::size_t n = g.task_count();
  const std::span<const std::uint32_t> poff = g.pred_offsets();
  const std::span<const std::uint32_t> pred = g.pred_index();
  const std::span<const std::uint32_t> soff = g.succ_offsets();
  const std::span<const std::uint32_t> succ = g.succ_index();
  for (std::uint32_t v = 0; v < n; ++v) {
    double t = 0.0;
    for (std::uint32_t e = poff[v]; e < poff[v + 1]; ++e) {
      const std::uint32_t u = pred[e];
      const double cand = top[u] + weights[u];
      if (cand > t) t = cand;
    }
    top[v] = t;
  }
  double d = 0.0;
  for (std::uint32_t v = static_cast<std::uint32_t>(n); v-- > 0;) {
    double below = 0.0;
    for (std::uint32_t e = soff[v]; e < soff[v + 1]; ++e) {
      if (bottom[succ[e]] > below) below = bottom[succ[e]];
    }
    bottom[v] = below + weights[v];
    const double through = top[v] + bottom[v];
    if (through > d) d = through;
  }
  return d;
}

}  // namespace expmk::graph
