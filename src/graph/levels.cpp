#include "graph/levels.hpp"

#include <stdexcept>

namespace expmk::graph {

namespace {
void check_sizes(const Dag& g, std::span<const double> weights,
                 std::span<const TaskId> topo) {
  if (weights.size() != g.task_count() || topo.size() != g.task_count()) {
    throw std::invalid_argument(
        "levels: weights/topo size mismatch with task count");
  }
}
}  // namespace

std::vector<double> top_levels(const Dag& g, std::span<const double> weights,
                               std::span<const TaskId> topo) {
  check_sizes(g, weights, topo);
  std::vector<double> top(g.task_count(), 0.0);
  for (const TaskId v : topo) {
    double t = 0.0;
    for (const TaskId u : g.predecessors(v)) {
      const double cand = top[u] + weights[u];
      if (cand > t) t = cand;
    }
    top[v] = t;
  }
  return top;
}

std::vector<double> bottom_levels(const Dag& g,
                                  std::span<const double> weights,
                                  std::span<const TaskId> topo) {
  check_sizes(g, weights, topo);
  std::vector<double> bottom(g.task_count(), 0.0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId v = *it;
    double below = 0.0;
    for (const TaskId w : g.successors(v)) {
      if (bottom[w] > below) below = bottom[w];
    }
    bottom[v] = below + weights[v];
  }
  return bottom;
}

Levels compute_levels(const Dag& g, std::span<const double> weights,
                      std::span<const TaskId> topo) {
  Levels out;
  out.top = top_levels(g, weights, topo);
  out.bottom = bottom_levels(g, weights, topo);
  for (TaskId v = 0; v < g.task_count(); ++v) {
    const double through = out.top[v] + out.bottom[v];
    if (through > out.critical_path) out.critical_path = through;
  }
  return out;
}

}  // namespace expmk::graph
