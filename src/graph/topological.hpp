// graph/topological.hpp
//
// Topological ordering (Kahn's algorithm). Almost every algorithm in the
// library consumes a precomputed order, so callers typically compute it
// once per DAG and pass it around; the MC engine reuses one order across
// hundreds of thousands of trials.

#pragma once

#include <optional>
#include <vector>

#include "graph/dag.hpp"

namespace expmk::graph {

/// Returns a topological order (every edge goes forward in the order), or
/// std::nullopt if the graph contains a cycle.
[[nodiscard]] std::optional<std::vector<TaskId>> try_topological_order(
    const Dag& g);

/// Returns a topological order; throws std::invalid_argument on a cycle.
[[nodiscard]] std::vector<TaskId> topological_order(const Dag& g);

/// rank[v] = position of v in `order`. Useful for "is u before v" checks.
[[nodiscard]] std::vector<std::uint32_t> ranks_of(
    const std::vector<TaskId>& order);

/// True iff `order` is a permutation of all tasks that respects every edge
/// of `g` (test helper; O(V + E)).
[[nodiscard]] bool is_topological_order(const Dag& g,
                                        const std::vector<TaskId>& order);

}  // namespace expmk::graph
