#include "graph/serialize.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace expmk::graph {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::invalid_argument("taskgraph parse error at line " +
                              std::to_string(line) + ": " + message);
}

std::string auto_name(TaskId id) { return "t" + std::to_string(id); }

std::string display_name(const Dag& g, TaskId id) {
  const std::string_view name = g.name(id);
  return name.empty() ? auto_name(id) : std::string(name);
}

/// Shared writer; `rates` empty selects version 1 (the historical format,
/// byte-stable for graphs without rates).
void write_impl(std::ostream& os, const Dag& g,
                std::span<const double> rates) {
  // max_digits10 so that weight/rate round-trips are bit-exact.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  const int version = rates.empty() ? 1 : 2;
  os << "expmk-taskgraph " << version << '\n';
  for (TaskId v = 0; v < g.task_count(); ++v) {
    os << "task " << display_name(g, v) << ' ' << g.weight(v);
    if (version == 2) os << ' ' << rates[v];
    os << '\n';
  }
  for (TaskId u = 0; u < g.task_count(); ++u) {
    for (const TaskId v : g.successors(u)) {
      os << "edge " << display_name(g, u) << ' ' << display_name(g, v)
         << '\n';
    }
  }
  os.precision(old_precision);
}

}  // namespace

void write_taskgraph(std::ostream& os, const Dag& g) {
  write_impl(os, g, {});
}

void write_taskgraph(std::ostream& os, const Dag& g,
                     std::span<const double> rates) {
  if (rates.size() != g.task_count()) {
    throw std::invalid_argument(
        "write_taskgraph: rates size mismatch with task count");
  }
  for (const double r : rates) {
    if (!(r >= 0.0) || !std::isfinite(r)) {
      throw std::invalid_argument(
          "write_taskgraph: rates must be finite and >= 0");
    }
  }
  write_impl(os, g, rates);
}

std::string to_taskgraph(const Dag& g) {
  std::ostringstream os;
  write_taskgraph(os, g);
  return os.str();
}

std::string to_taskgraph(const Dag& g, std::span<const double> rates) {
  std::ostringstream os;
  write_taskgraph(os, g, rates);
  return os.str();
}

TaskGraphFile read_taskgraph_file(std::istream& is) {
  TaskGraphFile out;
  Dag& g = out.dag;
  std::map<std::string, TaskId> ids;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  int version = 0;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank line

    if (!header_seen) {
      if (word != "expmk-taskgraph" || !(ls >> version)) {
        parse_error(line_no, "expected header 'expmk-taskgraph <1|2>'");
      }
      if (version != 1 && version != 2) {
        parse_error(line_no,
                    "unsupported version " + std::to_string(version));
      }
      header_seen = true;
      continue;
    }

    if (word == "task") {
      std::string name;
      double weight = 0.0;
      if (!(ls >> name >> weight)) {
        parse_error(line_no, version == 2
                                 ? "expected 'task <name> <weight> <rate>'"
                                 : "expected 'task <name> <weight>'");
      }
      if (ids.count(name)) parse_error(line_no, "duplicate task '" + name + "'");
      if (weight < 0.0) parse_error(line_no, "negative weight");
      if (version == 2) {
        double rate = 0.0;
        if (!(ls >> rate)) {
          parse_error(line_no, "expected 'task <name> <weight> <rate>'");
        }
        if (!(rate >= 0.0) || !std::isfinite(rate)) {
          parse_error(line_no, "rate must be finite and >= 0");
        }
        out.rates.push_back(rate);
      }
      ids[name] = g.add_task(name, weight);
    } else if (word == "edge") {
      std::string from, to;
      if (!(ls >> from >> to)) {
        parse_error(line_no, "expected 'edge <from> <to>'");
      }
      const auto fi = ids.find(from);
      const auto ti = ids.find(to);
      if (fi == ids.end()) parse_error(line_no, "unknown task '" + from + "'");
      if (ti == ids.end()) parse_error(line_no, "unknown task '" + to + "'");
      if (fi->second == ti->second) parse_error(line_no, "self loop");
      g.add_edge(fi->second, ti->second);
    } else {
      parse_error(line_no, "unknown directive '" + word + "'");
    }
  }
  if (!header_seen) {
    throw std::invalid_argument("taskgraph parse error: empty input");
  }
  return out;
}

Dag read_taskgraph(std::istream& is) {
  return read_taskgraph_file(is).dag;
}

Dag taskgraph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_taskgraph(is);
}

TaskGraphFile taskgraph_file_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_taskgraph_file(is);
}

void save_taskgraph(const std::string& path, const Dag& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_taskgraph(os, g);
  if (!os) throw std::runtime_error("write failed: " + path);
}

void save_taskgraph(const std::string& path, const Dag& g,
                    std::span<const double> rates) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_taskgraph(os, g, rates);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Dag load_taskgraph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_taskgraph(is);
}

TaskGraphFile load_taskgraph_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_taskgraph_file(is);
}

}  // namespace expmk::graph
