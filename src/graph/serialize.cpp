#include "graph/serialize.hpp"

#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace expmk::graph {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::invalid_argument("taskgraph parse error at line " +
                              std::to_string(line) + ": " + message);
}

std::string auto_name(TaskId id) { return "t" + std::to_string(id); }

}  // namespace

void write_taskgraph(std::ostream& os, const Dag& g) {
  // max_digits10 so that weight round-trips are bit-exact.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "expmk-taskgraph 1\n";
  for (TaskId v = 0; v < g.task_count(); ++v) {
    const std::string_view name = g.name(v);
    os << "task " << (name.empty() ? auto_name(v) : std::string(name)) << ' '
       << g.weight(v) << '\n';
  }
  for (TaskId u = 0; u < g.task_count(); ++u) {
    const std::string_view uname = g.name(u);
    for (const TaskId v : g.successors(u)) {
      const std::string_view vname = g.name(v);
      os << "edge " << (uname.empty() ? auto_name(u) : std::string(uname))
         << ' ' << (vname.empty() ? auto_name(v) : std::string(vname))
         << '\n';
    }
  }
  os.precision(old_precision);
}

std::string to_taskgraph(const Dag& g) {
  std::ostringstream os;
  write_taskgraph(os, g);
  return os.str();
}

Dag read_taskgraph(std::istream& is) {
  Dag g;
  std::map<std::string, TaskId> ids;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;

  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank line

    if (!header_seen) {
      int version = 0;
      if (word != "expmk-taskgraph" || !(ls >> version)) {
        parse_error(line_no, "expected header 'expmk-taskgraph 1'");
      }
      if (version != 1) {
        parse_error(line_no,
                    "unsupported version " + std::to_string(version));
      }
      header_seen = true;
      continue;
    }

    if (word == "task") {
      std::string name;
      double weight = 0.0;
      if (!(ls >> name >> weight)) {
        parse_error(line_no, "expected 'task <name> <weight>'");
      }
      if (ids.count(name)) parse_error(line_no, "duplicate task '" + name + "'");
      if (weight < 0.0) parse_error(line_no, "negative weight");
      ids[name] = g.add_task(name, weight);
    } else if (word == "edge") {
      std::string from, to;
      if (!(ls >> from >> to)) {
        parse_error(line_no, "expected 'edge <from> <to>'");
      }
      const auto fi = ids.find(from);
      const auto ti = ids.find(to);
      if (fi == ids.end()) parse_error(line_no, "unknown task '" + from + "'");
      if (ti == ids.end()) parse_error(line_no, "unknown task '" + to + "'");
      if (fi->second == ti->second) parse_error(line_no, "self loop");
      g.add_edge(fi->second, ti->second);
    } else {
      parse_error(line_no, "unknown directive '" + word + "'");
    }
  }
  if (!header_seen) {
    throw std::invalid_argument("taskgraph parse error: empty input");
  }
  return g;
}

Dag taskgraph_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_taskgraph(is);
}

void save_taskgraph(const std::string& path, const Dag& g) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_taskgraph(os, g);
  if (!os) throw std::runtime_error("write failed: " + path);
}

Dag load_taskgraph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_taskgraph(is);
}

}  // namespace expmk::graph
