#include "graph/level_sets.hpp"

#include <algorithm>
#include <stdexcept>

namespace expmk::graph {

namespace {

/// Bucket-sorts positions by `level` (already computed per position) into
/// a chunked schedule. Positions stay ascending within a level because the
/// counting sort scans positions in ascending order.
LevelChunks chunk_levels(const std::vector<std::uint32_t>& level,
                         std::uint32_t chunk) {
  const std::size_t n = level.size();
  LevelChunks out;
  std::uint32_t nlevels = 0;
  for (const std::uint32_t l : level) nlevels = std::max(nlevels, l + 1);
  if (n == 0) return out;

  std::vector<std::uint32_t> offsets(nlevels + 1, 0);
  for (const std::uint32_t l : level) ++offsets[l + 1];
  for (std::uint32_t l = 0; l < nlevels; ++l) offsets[l + 1] += offsets[l];

  out.order.resize(n);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::uint32_t v = 0; v < n; ++v) {
      out.order[cursor[level[v]]++] = v;
    }
  }

  out.level_chunks.resize(nlevels);
  out.chunk_begin.push_back(0);
  for (std::uint32_t l = 0; l < nlevels; ++l) {
    const std::uint32_t begin = offsets[l];
    const std::uint32_t end = offsets[l + 1];
    const std::uint32_t count = (end - begin + chunk - 1) / chunk;
    out.level_chunks[l] = count;
    for (std::uint32_t c = 0; c < count; ++c) {
      out.chunk_begin.push_back(std::min(end, begin + (c + 1) * chunk));
      out.chunk_level.push_back(l);
    }
  }
  return out;
}

}  // namespace

LevelSets build_level_sets(const CsrDag& g, std::uint32_t chunk) {
  if (chunk == 0) {
    throw std::invalid_argument("build_level_sets: chunk must be >= 1");
  }
  const std::size_t n = g.task_count();
  LevelSets out;

  std::vector<std::uint32_t> level(n, 0);
  // Forward hop depth: positions are a topo order, so one ascending pass.
  const auto poff = g.pred_offsets();
  const auto pred = g.pred_index();
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint32_t l = 0;
    for (std::uint32_t e = poff[v]; e < poff[v + 1]; ++e) {
      l = std::max(l, level[pred[e]] + 1);
    }
    level[v] = l;
  }
  out.fwd = chunk_levels(level, chunk);

  // Backward hop depth: one descending pass over successors.
  const auto soff = g.succ_offsets();
  const auto succ = g.succ_index();
  std::fill(level.begin(), level.end(), 0);
  for (std::uint32_t v = static_cast<std::uint32_t>(n); v-- > 0;) {
    std::uint32_t l = 0;
    for (std::uint32_t e = soff[v]; e < soff[v + 1]; ++e) {
      l = std::max(l, level[succ[e]] + 1);
    }
    level[v] = l;
  }
  out.bwd = chunk_levels(level, chunk);

  return out;
}

}  // namespace expmk::graph
