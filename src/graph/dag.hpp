// graph/dag.hpp
//
// The task-graph substrate: a weighted DAG of tasks with named vertices.
// Vertices are dense indices (TaskId) so every algorithm in the library is
// array-based; adjacency is stored both ways (successors and predecessors)
// because forward passes (top levels, completion times) and backward passes
// (bottom levels) both occur in hot paths.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace expmk::graph {

/// Dense vertex index. Valid ids are < Dag::task_count().
using TaskId = std::uint32_t;

/// Sentinel for "no task" (e.g. predecessor of an entry in path traces).
inline constexpr TaskId kNoTask = static_cast<TaskId>(-1);

/// A directed acyclic task graph with per-task weights (failure-free
/// execution times, the paper's a_i) and optional human-readable names.
///
/// Edges may be inserted in any order; acyclicity is *not* checked on
/// insertion (generators insert edges in bulk) but is enforced by
/// topological_order() and graph::validate(). Duplicate edges are ignored
/// only when `add_edge_unique` is used; generators use plain add_edge and
/// guarantee uniqueness by construction.
class Dag {
 public:
  Dag() = default;

  /// Creates `n` unnamed tasks of weight `w` upfront.
  static Dag with_tasks(std::size_t n, double w);

  /// Pre-sizes the per-task arrays for `n` tasks. Generators building
  /// 10^5-10^6 task graphs call this once so that the four parallel
  /// vectors grow with a single allocation each instead of doubling
  /// through ~20 reallocations of vector<vector> headers.
  void reserve_tasks(std::size_t n);

  /// Adds a task; `weight` must be >= 0 (virtual source/sink use 0).
  TaskId add_task(std::string name, double weight);

  /// Adds a task with an empty name.
  TaskId add_task(double weight) { return add_task(std::string(), weight); }

  /// Adds edge from -> to. Both ids must exist; self-loops are rejected.
  void add_edge(TaskId from, TaskId to);

  /// Adds the edge only if not already present (O(out-degree) check).
  void add_edge_unique(TaskId from, TaskId to);

  /// Replaces the weight of one task.
  void set_weight(TaskId id, double weight);

  [[nodiscard]] std::size_t task_count() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  [[nodiscard]] double weight(TaskId id) const { return weights_.at(id); }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::string_view name(TaskId id) const {
    return names_.at(id);
  }

  [[nodiscard]] std::span<const TaskId> successors(TaskId id) const {
    return succ_.at(id);
  }
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId id) const {
    return pred_.at(id);
  }
  [[nodiscard]] std::size_t out_degree(TaskId id) const {
    return succ_.at(id).size();
  }
  [[nodiscard]] std::size_t in_degree(TaskId id) const {
    return pred_.at(id).size();
  }

  /// Tasks with no predecessor / no successor.
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// Sum of all task weights (the paper's A = sum a_i).
  [[nodiscard]] double total_weight() const noexcept;

  /// Mean task weight a-bar, used by the pfail -> lambda calibration of
  /// section V-C. Zero-weight tasks (virtual nodes) are *included*, like
  /// the paper's straightforward average; generators do not create virtual
  /// nodes so in practice this is the mean over real tasks.
  [[nodiscard]] double mean_weight() const noexcept;

  /// Looks up a task id by exact name; returns kNoTask if absent.
  [[nodiscard]] TaskId find_by_name(std::string_view name) const noexcept;

 private:
  std::vector<double> weights_;
  std::vector<std::string> names_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  std::size_t edges_ = 0;
};

}  // namespace expmk::graph
