// graph/serialize.hpp
//
// A minimal text format for task graphs so DAGs can be saved, diffed and
// fed to the CLI tool. Format (line oriented, '#' comments):
//
//   expmk-taskgraph 1
//   task <name> <weight>
//   edge <from-name> <to-name>
//
// Version 2 additionally round-trips per-task silent-error rates (the
// heterogeneous scenario input, scenario/scenario.hpp):
//
//   expmk-taskgraph 2
//   task <name> <weight> <rate>
//   edge <from-name> <to-name>
//
// Names must be unique and whitespace-free; tasks must be declared before
// edges referencing them. The writer emits tasks in id order, so
// write->read round-trips preserve TaskIds (and rates, bit-exactly: both
// columns are printed with max_digits10). Graphs without rates are always
// written as version 1, keeping existing artifacts byte-stable.

#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/dag.hpp"

namespace expmk::graph {

/// A parsed task-graph file: the DAG plus the optional per-task failure
/// rates a version-2 file carries.
struct TaskGraphFile {
  Dag dag;
  /// rates[i] = task i's silent-error rate lambda_i; empty for a
  /// version-1 file.
  std::vector<double> rates;

  [[nodiscard]] bool has_rates() const noexcept { return !rates.empty(); }
};

/// Writes `g` in the version-1 expmk-taskgraph format.
void write_taskgraph(std::ostream& os, const Dag& g);

/// Writes `g` with per-task rates in the version-2 format. `rates` must
/// have task_count() entries, each finite and >= 0 (std::invalid_argument
/// otherwise).
void write_taskgraph(std::ostream& os, const Dag& g,
                     std::span<const double> rates);

/// Serializes to a string (version 1).
[[nodiscard]] std::string to_taskgraph(const Dag& g);

/// Serializes to a string with per-task rates (version 2).
[[nodiscard]] std::string to_taskgraph(const Dag& g,
                                       std::span<const double> rates);

/// Parses either format version; throws std::invalid_argument with a line
/// number on malformed input (bad header, unknown directive, duplicate
/// name, unknown endpoint, non-numeric weight, missing/negative rate).
[[nodiscard]] TaskGraphFile read_taskgraph_file(std::istream& is);

/// Parses the format, discarding any rates; throws like
/// read_taskgraph_file.
[[nodiscard]] Dag read_taskgraph(std::istream& is);

/// Parses from a string.
[[nodiscard]] Dag taskgraph_from_string(const std::string& text);

/// Parses from a string, keeping rates.
[[nodiscard]] TaskGraphFile taskgraph_file_from_string(
    const std::string& text);

/// Convenience file helpers; throw std::runtime_error on I/O failure.
void save_taskgraph(const std::string& path, const Dag& g);
void save_taskgraph(const std::string& path, const Dag& g,
                    std::span<const double> rates);
[[nodiscard]] Dag load_taskgraph(const std::string& path);
[[nodiscard]] TaskGraphFile load_taskgraph_file(const std::string& path);

}  // namespace expmk::graph
