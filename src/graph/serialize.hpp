// graph/serialize.hpp
//
// A minimal text format for task graphs so DAGs can be saved, diffed and
// fed to the CLI tool. Format (line oriented, '#' comments):
//
//   expmk-taskgraph 1
//   task <name> <weight>
//   edge <from-name> <to-name>
//
// Names must be unique and whitespace-free; tasks must be declared before
// edges referencing them. The writer emits tasks in id order, so
// write->read round-trips preserve TaskIds.

#pragma once

#include <iosfwd>
#include <string>

#include "graph/dag.hpp"

namespace expmk::graph {

/// Writes `g` in the expmk-taskgraph format.
void write_taskgraph(std::ostream& os, const Dag& g);

/// Serializes to a string.
[[nodiscard]] std::string to_taskgraph(const Dag& g);

/// Parses the format; throws std::invalid_argument with a line number on
/// malformed input (bad header, unknown directive, duplicate name,
/// unknown endpoint, non-numeric weight).
[[nodiscard]] Dag read_taskgraph(std::istream& is);

/// Parses from a string.
[[nodiscard]] Dag taskgraph_from_string(const std::string& text);

/// Convenience file helpers; throw std::runtime_error on I/O failure.
void save_taskgraph(const std::string& path, const Dag& g);
[[nodiscard]] Dag load_taskgraph(const std::string& path);

}  // namespace expmk::graph
