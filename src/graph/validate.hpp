// graph/validate.hpp
//
// Structural validation of task graphs: a cheap sanity pass every generator
// output and every test fixture goes through. Returns a report instead of
// throwing so tests can assert on individual findings.

#pragma once

#include <string>
#include <vector>

#include "graph/dag.hpp"

namespace expmk::graph {

/// Findings of a validation pass.
struct ValidationReport {
  bool acyclic = true;
  bool weights_nonnegative = true;
  bool has_duplicate_edges = false;
  std::size_t entry_count = 0;
  std::size_t exit_count = 0;
  std::size_t component_count = 0;  ///< weakly connected components
  std::vector<std::string> problems;

  /// True iff the graph is a usable task graph: acyclic, nonnegative
  /// weights, no duplicate edges, at least one task.
  [[nodiscard]] bool ok() const {
    return acyclic && weights_nonnegative && !has_duplicate_edges &&
           entry_count > 0;
  }
};

/// Runs all checks; O(V + E) plus an O(E log E)-ish duplicate scan.
[[nodiscard]] ValidationReport validate(const Dag& g);

}  // namespace expmk::graph
