// graph/metrics.hpp
//
// Structural statistics of task DAGs: depth, level widths, degree
// profiles, density, and the parallelism-oriented summary numbers
// (average parallelism = total work / critical path) that workload
// characterization sections of scheduling papers report.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "graph/dag.hpp"

namespace expmk::graph {

/// Summary statistics of a DAG.
struct DagMetrics {
  std::size_t tasks = 0;
  std::size_t edges = 0;
  std::size_t entries = 0;
  std::size_t exits = 0;
  /// Number of precedence levels (longest path in hop count).
  std::size_t depth = 0;
  /// Max number of tasks sharing a precedence level (a cheap width proxy;
  /// the true max antichain is NP-hard-adjacent via Dilworth+matching and
  /// not needed here).
  std::size_t max_level_width = 0;
  double total_work = 0.0;       ///< sum of weights
  double critical_path = 0.0;    ///< d(G)
  double average_parallelism = 0.0;  ///< total_work / critical_path
  double mean_out_degree = 0.0;
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
  /// Edge density relative to a total order: edges / C(tasks, 2).
  double density = 0.0;
};

/// Computes all metrics in O(V + E).
[[nodiscard]] DagMetrics compute_metrics(const Dag& g);

/// Tasks per precedence level (level = longest hop distance from an
/// entry). levels()[0] holds all entries.
[[nodiscard]] std::vector<std::vector<TaskId>> level_partition(const Dag& g);

/// Human-readable one-per-line dump (examples/CLI reporting).
std::ostream& operator<<(std::ostream& os, const DagMetrics& m);

}  // namespace expmk::graph
