#include "graph/longest_path.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/topological.hpp"

namespace expmk::graph {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

EXPMK_NOALLOC void check_sizes(const Dag& g, std::span<const double> weights,
                 std::span<const TaskId> topo) {
  if (weights.size() != g.task_count() || topo.size() != g.task_count()) {
    throw std::invalid_argument(
        "longest_path: weights/topo size mismatch with task count");
  }
}
}  // namespace

EXPMK_NOALLOC double critical_path_length(const Dag& g, std::span<const double> weights,
                            std::span<const TaskId> topo,
                            std::span<double> finish) {
  check_sizes(g, weights, topo);
  if (finish.size() != g.task_count()) {
    throw std::invalid_argument(
        "longest_path: finish scratch size mismatch with task count");
  }
  // finish[v] = longest path ending at v (inclusive of v's weight).
  double best = 0.0;
  for (const TaskId v : topo) {
    double start = 0.0;
    for (const TaskId u : g.predecessors(v)) {
      if (finish[u] > start) start = finish[u];
    }
    finish[v] = start + weights[v];
    if (finish[v] > best) best = finish[v];
  }
  return best;
}

double critical_path_length(const Dag& g, std::span<const double> weights,
                            std::span<const TaskId> topo) {
  if (g.task_count() == 0) {
    check_sizes(g, weights, topo);
    return 0.0;
  }
  std::vector<double> finish(g.task_count(), 0.0);
  return critical_path_length(g, weights, topo, finish);
}

double critical_path_length(const Dag& g) {
  const auto topo = topological_order(g);
  return critical_path_length(g, g.weights(), topo);
}

CriticalPath critical_path(const Dag& g, std::span<const double> weights,
                           std::span<const TaskId> topo) {
  check_sizes(g, weights, topo);
  CriticalPath out;
  if (g.task_count() == 0) return out;

  std::vector<double> finish(g.task_count(), 0.0);
  std::vector<TaskId> from(g.task_count(), kNoTask);
  TaskId best_task = topo.front();
  for (const TaskId v : topo) {
    double start = 0.0;
    TaskId arg = kNoTask;
    for (const TaskId u : g.predecessors(v)) {
      if (finish[u] > start || (finish[u] == start && arg != kNoTask && u < arg)) {
        start = finish[u];
        arg = u;
      }
    }
    finish[v] = start + weights[v];
    from[v] = arg;
    if (finish[v] > finish[best_task] ||
        (finish[v] == finish[best_task] && v < best_task)) {
      best_task = v;
    }
  }
  out.length = finish[best_task];
  for (TaskId v = best_task; v != kNoTask; v = from[v]) out.tasks.push_back(v);
  std::reverse(out.tasks.begin(), out.tasks.end());
  return out;
}

void longest_from(const Dag& g, TaskId source, std::span<const double> weights,
                  std::span<const TaskId> topo, std::span<double> dist) {
  check_sizes(g, weights, topo);
  if (source >= g.task_count()) {
    throw std::out_of_range("longest_from: invalid source");
  }
  if (dist.size() != g.task_count()) {
    throw std::invalid_argument(
        "longest_from: dist scratch size mismatch with task count");
  }
  std::fill(dist.begin(), dist.end(), kNegInf);
  dist[source] = weights[source];
  // One pass over the topological suffix starting at source is enough; we
  // simply skip vertices that are still unreachable.
  bool seen_source = false;
  for (const TaskId v : topo) {
    if (v == source) seen_source = true;
    if (!seen_source || dist[v] == kNegInf) continue;
    for (const TaskId w : g.successors(v)) {
      const double cand = dist[v] + weights[w];
      if (cand > dist[w]) dist[w] = cand;
    }
  }
}

std::vector<double> longest_from(const Dag& g, TaskId source,
                                 std::span<const double> weights,
                                 std::span<const TaskId> topo) {
  std::vector<double> dist(g.task_count());
  longest_from(g, source, weights, topo, dist);
  return dist;
}

}  // namespace expmk::graph
