#include "graph/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace expmk::graph {

Dag Dag::with_tasks(std::size_t n, double w) {
  Dag g;
  g.weights_.assign(n, w);
  g.names_.assign(n, std::string());
  g.succ_.assign(n, {});
  g.pred_.assign(n, {});
  if (w < 0.0) throw std::invalid_argument("Dag: negative weight");
  return g;
}

void Dag::reserve_tasks(std::size_t n) {
  weights_.reserve(n);
  names_.reserve(n);
  succ_.reserve(n);
  pred_.reserve(n);
}

TaskId Dag::add_task(std::string name, double weight) {
  if (weight < 0.0) throw std::invalid_argument("Dag: negative weight");
  const TaskId id = static_cast<TaskId>(weights_.size());
  weights_.push_back(weight);
  names_.push_back(std::move(name));
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void Dag::add_edge(TaskId from, TaskId to) {
  if (from >= task_count() || to >= task_count()) {
    throw std::out_of_range("Dag::add_edge: invalid task id");
  }
  if (from == to) throw std::invalid_argument("Dag::add_edge: self loop");
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++edges_;
}

void Dag::add_edge_unique(TaskId from, TaskId to) {
  if (from >= task_count() || to >= task_count()) {
    throw std::out_of_range("Dag::add_edge_unique: invalid task id");
  }
  const auto& s = succ_[from];
  if (std::find(s.begin(), s.end(), to) != s.end()) return;
  add_edge(from, to);
}

void Dag::set_weight(TaskId id, double weight) {
  if (weight < 0.0) throw std::invalid_argument("Dag: negative weight");
  weights_.at(id) = weight;
}

std::vector<TaskId> Dag::entry_tasks() const {
  std::vector<TaskId> out;
  for (TaskId i = 0; i < task_count(); ++i) {
    if (pred_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<TaskId> Dag::exit_tasks() const {
  std::vector<TaskId> out;
  for (TaskId i = 0; i < task_count(); ++i) {
    if (succ_[i].empty()) out.push_back(i);
  }
  return out;
}

double Dag::total_weight() const noexcept {
  double total = 0.0;
  for (const double w : weights_) total += w;
  return total;
}

double Dag::mean_weight() const noexcept {
  if (weights_.empty()) return 0.0;
  return total_weight() / static_cast<double>(weights_.size());
}

TaskId Dag::find_by_name(std::string_view name) const noexcept {
  for (TaskId i = 0; i < task_count(); ++i) {
    if (names_[i] == name) return i;
  }
  return kNoTask;
}

}  // namespace expmk::graph
