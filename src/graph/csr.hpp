// graph/csr.hpp
//
// Immutable compressed-sparse-row (CSR) view of a Dag, built once and then
// shared by every hot loop that evaluates the graph hundreds of thousands
// of times (the Monte-Carlo trial kernel above all).
//
// Two layout decisions carry the speedup over walking the Dag directly:
//
//  1. Flat adjacency. Predecessor and successor lists live in two
//     contiguous index arrays addressed by offset arrays, instead of a
//     std::vector<std::vector<TaskId>> whose per-vertex heap blocks
//     scatter across the allocator. One trial touches the predecessor
//     array exactly once, in order.
//
//  2. Topological renumbering. Vertices are renumbered so that position
//     0..n-1 IS a topological order of the Dag. Dynamic programs over the
//     graph (longest path, levels) then iterate positions sequentially
//     with no indirection through a topo-order array, and their finish[]
//     scratch is written strictly left to right — the access pattern the
//     prefetcher likes.
//
// All CSR kernels take caller-provided scratch spans and perform ZERO
// allocation per call (see DESIGN.md for the scratch-buffer convention).
// Weights/scratch passed to the kernels are in *position* order; use
// order()/position() to translate to and from Dag task ids.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dag.hpp"
#include "util/contracts.hpp"

namespace expmk::graph {

/// Flattened, topologically renumbered, immutable view of a Dag.
///
/// Invariant: for every edge (u, v) of the source Dag,
/// position(u) < position(v). Hence iterating positions 0..n-1 is a
/// forward (topological) sweep and n-1..0 a backward one.
class CsrDag {
 public:
  /// Builds the view; O(V + E). Throws std::invalid_argument on a cycle.
  explicit CsrDag(const Dag& g);

  /// Reweight constructor for Scenario::patch: copies `base`'s adjacency,
  /// ordering and offset arrays verbatim (no Kahn re-run — the structure
  /// is unchanged, so the topological renumbering is too) and permutes
  /// `weights_by_id` (Dag id order, size task_count()) into position
  /// order. O(V + E) memcpy instead of the full sort.
  CsrDag(const CsrDag& base, std::span<const double> weights_by_id);

  [[nodiscard]] std::size_t task_count() const noexcept {
    return weights_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return pred_index_.size();
  }

  /// order()[pos] = Dag task id at that position; a topological order.
  [[nodiscard]] std::span<const TaskId> order() const noexcept {
    return order_;
  }
  /// position()[id] = CSR position of Dag task `id`.
  [[nodiscard]] std::span<const std::uint32_t> position() const noexcept {
    return position_;
  }
  [[nodiscard]] std::uint32_t position_of(TaskId id) const {
    return position_.at(id);
  }
  [[nodiscard]] TaskId original_id(std::uint32_t pos) const {
    return order_.at(pos);
  }

  /// Task weights permuted into position order.
  [[nodiscard]] std::span<const double> weights() const noexcept {
    return weights_;
  }

  /// Predecessor positions of the vertex at `pos`.
  [[nodiscard]] std::span<const std::uint32_t> preds(
      std::uint32_t pos) const {
    return {pred_index_.data() + pred_offsets_[pos],
            pred_index_.data() + pred_offsets_[pos + 1]};
  }
  /// Successor positions of the vertex at `pos`.
  [[nodiscard]] std::span<const std::uint32_t> succs(
      std::uint32_t pos) const {
    return {succ_index_.data() + succ_offsets_[pos],
            succ_index_.data() + succ_offsets_[pos + 1]};
  }

  // Raw arrays for kernels that hand-roll the inner loop.
  [[nodiscard]] std::span<const std::uint32_t> pred_offsets() const noexcept {
    return pred_offsets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> pred_index() const noexcept {
    return pred_index_;
  }
  [[nodiscard]] std::span<const std::uint32_t> succ_offsets() const noexcept {
    return succ_offsets_;
  }
  [[nodiscard]] std::span<const std::uint32_t> succ_index() const noexcept {
    return succ_index_;
  }

 private:
  std::vector<double> weights_;          // position order
  std::vector<TaskId> order_;            // position -> Dag id
  std::vector<std::uint32_t> position_;  // Dag id -> position
  std::vector<std::uint32_t> pred_offsets_;  // size n+1
  std::vector<std::uint32_t> pred_index_;    // size E, positions
  std::vector<std::uint32_t> succ_offsets_;  // size n+1
  std::vector<std::uint32_t> succ_index_;    // size E, positions
};

/// d(G) over the CSR view with caller scratch; zero allocation. `weights`
/// and `finish` are in position order and must have size task_count();
/// `finish` is overwritten (finish[v] = longest path ending at v).
EXPMK_NOALLOC [[nodiscard]] double critical_path_length(const CsrDag& g,
                                          std::span<const double> weights,
                                          std::span<double> finish);

/// Single-source longest paths from the vertex at `source` position, into
/// caller scratch; zero allocation. On return dist[v] = longest source->v
/// path (inclusive of both endpoint weights) for v >= source, -infinity
/// where unreachable; entries below `source` are untouched (positions
/// before `source` are never reachable — the renumbering is topological).
EXPMK_NOALLOC void longest_from(const CsrDag& g, std::uint32_t source,
                  std::span<const double> weights, std::span<double> dist);

/// Blocked longest paths: `nlanes` consecutive sources base, base+1, ...,
/// base+nlanes-1 swept in ONE pass over the CSR edges, into a vertex-major
/// lane matrix (dist[v * nlanes + l] is lane l's entry for position v; the
/// span must hold task_count() * nlanes doubles). Lane l reproduces
/// longest_from(g, base + l, ...) bit for bit for every v >= base + l:
/// the per-lane "ignore predecessors below my source" rule is realized by
/// seeding positions in [base, base+l) with -infinity, which IEEE
/// arithmetic then propagates exactly like the scalar skip (-inf never
/// wins a max; -inf + w stays -inf for finite w). Entries at positions
/// below `base` are untouched; entries for v < base + l within the block
/// read -infinity. Requires 1 <= nlanes and base + nlanes <= task_count().
/// This is the cache-blocked engine under core::second_order's pair
/// sweep: one edge pass serves nlanes sources instead of one.
EXPMK_NOALLOC void longest_from_block(const CsrDag& g, std::uint32_t base,
                        std::uint32_t nlanes, std::span<const double> weights,
                        std::span<double> dist);

/// Top and bottom levels (graph/levels.hpp conventions) over the CSR view
/// into caller scratch, one forward and one backward sweep; returns
/// d(G) = max_v top[v] + bottom[v]. Zero allocation. Shared by the
/// first- and second-order estimators.
EXPMK_NOALLOC double compute_levels(const CsrDag& g, std::span<const double> weights,
                      std::span<double> top, std::span<double> bottom);

}  // namespace expmk::graph
