// graph/longest_path.hpp
//
// Longest (critical) path computations on weighted DAGs — the paper's d(G).
// All functions take the weight vector explicitly so callers can evaluate
// perturbed weights (doubled tasks, Monte-Carlo samples) without copying
// the graph structure; pass g.weights() for the failure-free makespan.

#pragma once

#include <span>
#include <vector>

#include "graph/dag.hpp"
#include "util/contracts.hpp"

namespace expmk::graph {

/// d(G): length of the longest source-to-sink path, where the length of a
/// path is the sum of its tasks' weights. O(V + E) given a topological
/// order.
[[nodiscard]] double critical_path_length(const Dag& g,
                                          std::span<const double> weights,
                                          std::span<const TaskId> topo);

/// Allocation-free overload: `finish` is caller scratch of size
/// task_count(), overwritten with finish[v] = longest path ending at v.
/// Hot-path form (see DESIGN.md); the overload above allocates the scratch
/// per call and delegates here.
EXPMK_NOALLOC [[nodiscard]] double critical_path_length(const Dag& g,
                                          std::span<const double> weights,
                                          std::span<const TaskId> topo,
                                          std::span<double> finish);

/// Convenience overload using the DAG's own weights and a fresh order.
[[nodiscard]] double critical_path_length(const Dag& g);

/// A critical path as a task sequence (entry to exit) plus its length.
struct CriticalPath {
  std::vector<TaskId> tasks;
  double length = 0.0;
};

/// Extracts one longest path (ties broken by smallest task id).
[[nodiscard]] CriticalPath critical_path(const Dag& g,
                                         std::span<const double> weights,
                                         std::span<const TaskId> topo);

/// Single-source longest paths: out[j] = longest path from `source` to j,
/// summing the weights of all tasks on the path *including both endpoints*;
/// -infinity where j is unreachable; out[source] = weights[source].
/// Used by the second-order estimator's cross terms. O(V + E).
[[nodiscard]] std::vector<double> longest_from(const Dag& g, TaskId source,
                                               std::span<const double> weights,
                                               std::span<const TaskId> topo);

/// Allocation-free overload writing into caller scratch `dist` (size
/// task_count(), fully overwritten). Same semantics as above.
void longest_from(const Dag& g, TaskId source, std::span<const double> weights,
                  std::span<const TaskId> topo, std::span<double> dist);

}  // namespace expmk::graph
