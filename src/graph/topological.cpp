#include "graph/topological.hpp"

#include <stdexcept>

namespace expmk::graph {

std::optional<std::vector<TaskId>> try_topological_order(const Dag& g) {
  const std::size_t n = g.task_count();
  std::vector<std::uint32_t> indeg(n);
  std::vector<TaskId> order;
  order.reserve(n);
  for (TaskId v = 0; v < n; ++v) {
    indeg[v] = static_cast<std::uint32_t>(g.in_degree(v));
    if (indeg[v] == 0) order.push_back(v);
  }
  // `order` doubles as the Kahn work queue: items before `head` are final.
  for (std::size_t head = 0; head < order.size(); ++head) {
    const TaskId u = order[head];
    for (const TaskId v : g.successors(u)) {
      if (--indeg[v] == 0) order.push_back(v);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

std::vector<TaskId> topological_order(const Dag& g) {
  auto order = try_topological_order(g);
  if (!order) {
    throw std::invalid_argument("topological_order: graph has a cycle");
  }
  return std::move(*order);
}

std::vector<std::uint32_t> ranks_of(const std::vector<TaskId>& order) {
  std::vector<std::uint32_t> rank(order.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) rank[order[i]] = i;
  return rank;
}

bool is_topological_order(const Dag& g, const std::vector<TaskId>& order) {
  if (order.size() != g.task_count()) return false;
  std::vector<std::uint32_t> rank(order.size(), 0);
  std::vector<bool> seen(order.size(), false);
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    if (order[i] >= g.task_count() || seen[order[i]]) return false;
    seen[order[i]] = true;
    rank[order[i]] = i;
  }
  for (TaskId u = 0; u < g.task_count(); ++u) {
    for (const TaskId v : g.successors(u)) {
      if (rank[u] >= rank[v]) return false;
    }
  }
  return true;
}

}  // namespace expmk::graph
