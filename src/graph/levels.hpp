// graph/levels.hpp
//
// Top and bottom levels — the quantities the paper's closed-form first
// order approximation is built from, and the priorities classical
// CP-scheduling uses.
//
// Conventions (standard scheduling-theory ones; the paper's Section III
// definitions contain well-known typos which we normalize):
//   top(i)    = length of the longest path ending just *before* i
//               (sum of the weights of i's ancestors along that path);
//               0 for entry tasks.
//   bottom(i) = length of the longest path starting *at* i, inclusive of
//               a_i; a_i for exit tasks.
// Then top(i) + bottom(i) is the longest source-sink path through i, and
// d(G) = max_i bottom(i) over entries = max_i (top(i) + bottom(i)).

#pragma once

#include <span>
#include <vector>

#include "graph/dag.hpp"

namespace expmk::graph {

/// top(i) for every task. O(V + E).
[[nodiscard]] std::vector<double> top_levels(const Dag& g,
                                             std::span<const double> weights,
                                             std::span<const TaskId> topo);

/// bottom(i) for every task (inclusive of the task's own weight). O(V + E).
[[nodiscard]] std::vector<double> bottom_levels(
    const Dag& g, std::span<const double> weights,
    std::span<const TaskId> topo);

/// Bundled levels plus the derived critical-path length; computed in one
/// call because the first-order estimator needs all three.
struct Levels {
  std::vector<double> top;
  std::vector<double> bottom;
  double critical_path = 0.0;  ///< d(G) = max_i top[i] + bottom[i]
};

[[nodiscard]] Levels compute_levels(const Dag& g,
                                    std::span<const double> weights,
                                    std::span<const TaskId> topo);

}  // namespace expmk::graph
