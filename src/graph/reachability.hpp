// graph/reachability.hpp
//
// Reachability queries and transitive closure/reduction. The closure backs
// the exact second-order oracle tests; the reduction is used by the DOT
// exporter (the paper's Figures 1-3 draw transitively reduced DAGs) and by
// generator tests.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/dag.hpp"

namespace expmk::graph {

/// Bit-packed V x V reachability matrix built in O(V * E / 64).
/// reaches(u, v) is true iff there is a directed path u -> v (u != v;
/// reaches(u, u) is false by convention).
class Reachability {
 public:
  explicit Reachability(const Dag& g);

  [[nodiscard]] bool reaches(TaskId u, TaskId v) const {
    return (rows_[u * stride_ + (v >> 6)] >> (v & 63)) & 1ULL;
  }

  /// Number of vertices reachable from u (descendants).
  [[nodiscard]] std::size_t descendant_count(TaskId u) const;

  /// True iff u and v lie on a common path (u reaches v or v reaches u).
  [[nodiscard]] bool comparable(TaskId u, TaskId v) const {
    return reaches(u, v) || reaches(v, u);
  }

 private:
  std::size_t n_;
  std::size_t stride_;  // 64-bit words per row
  std::vector<std::uint64_t> rows_;
};

/// Returns a copy of `g` with every transitive (redundant) edge removed.
/// An edge (u,v) is redundant if some other path u -> v exists. O(V*E/64 +
/// E * V/64) using the bitset closure.
[[nodiscard]] Dag transitive_reduction(const Dag& g);

/// Counts edges that a transitive reduction would remove (cheap metric
/// used in validation reports).
[[nodiscard]] std::size_t redundant_edge_count(const Dag& g);

}  // namespace expmk::graph
