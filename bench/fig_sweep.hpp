// bench/fig_sweep.hpp
//
// The common driver behind fig_cholesky / fig_lu / fig_qr: sweep graph
// size k in {4,6,8,10,12} x pfail in {1e-2,1e-3,1e-4} and print one row
// per (figure, k, method) — the series the paper plots in Figures 4-12.

#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace expmk::bench {

/// Runs the full sweep for one DAG class.
/// `first_figure` is the paper's figure number at pfail = 0.01 (figures
/// for 1e-3 / 1e-4 follow consecutively, matching the paper's layout).
inline int run_fig_sweep(int argc, const char* const* argv,
                         const std::string& class_name, int first_figure,
                         const std::function<graph::Dag(int)>& make_dag) {
  util::Cli cli("fig_" + class_name,
                "Reproduces the paper's " + class_name +
                    " accuracy figures (relative error vs Monte-Carlo)");
  cli.add_int("trials", 300'000, "Monte-Carlo trials per cell");
  cli.add_int("seed", 2016, "Monte-Carlo master seed");
  cli.add_int("dodin-atoms", 256, "atom budget for Dodin distributions");
  cli.add_string("sizes", "4,6,8,10,12", "comma-separated k values");
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  cli.add_flag("extended", "also run second-order / CorLCA / Clark-full");
  cli.parse(argc, argv);

  std::vector<int> sizes;
  {
    const std::string& s = cli.get_string("sizes");
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t comma = s.find(',', pos);
      sizes.push_back(std::stoi(s.substr(pos, comma - pos)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const std::vector<double> pfails = {0.01, 0.001, 0.0001};
  const bool extended = cli.get_flag("extended");

  std::vector<std::string> header = {
      "figure", "class",      "k",       "tasks",   "pfail",
      "mc_mean", "mc_ci95",   "d(G)",    "FirstOrder", "Dodin",
      "Normal"};
  if (extended) {
    header.insert(header.end(), {"SecondOrder", "CorLCA", "ClarkFull"});
  }
  header.insert(header.end(), {"t_FO", "t_Dodin", "t_Normal", "t_MC"});
  util::Table table(header);

  const util::Timer total;
  for (std::size_t pi = 0; pi < pfails.size(); ++pi) {
    for (const int k : sizes) {
      const auto g = make_dag(k);
      CellOptions opt;
      opt.mc_trials = static_cast<std::uint64_t>(cli.get_int("trials"));
      opt.mc_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      opt.dodin_atoms = static_cast<std::size_t>(cli.get_int("dodin-atoms"));
      opt.run_second_order = opt.run_corlca = opt.run_clark_full = extended;
      const CellResult cell = evaluate_cell(g, pfails[pi], opt);

      table.begin_row();
      table.add("Fig." + std::to_string(first_figure + static_cast<int>(pi)));
      table.add(class_name);
      table.add_int(k);
      table.add_int(static_cast<std::int64_t>(g.task_count()));
      table.add_double(pfails[pi]);
      table.add_double(cell.mc_mean);
      table.add_double(cell.mc_ci95);
      table.add_double(cell.critical_path);
      table.add_signed_sci(cell.first_order.normalized_difference);
      table.add_signed_sci(cell.dodin.normalized_difference);
      table.add_signed_sci(cell.sculli.normalized_difference);
      if (extended) {
        table.add_signed_sci(cell.second_order.normalized_difference);
        table.add_signed_sci(cell.corlca.normalized_difference);
        table.add_signed_sci(cell.clark_full.normalized_difference);
      }
      table.add(util::format_duration(cell.first_order.seconds));
      table.add(util::format_duration(cell.dodin.seconds));
      table.add(util::format_duration(cell.sculli.seconds));
      table.add(util::format_duration(cell.mc_seconds));
    }
  }

  std::cout << "# " << class_name << " accuracy sweep — normalized "
            << "difference (estimate - MC)/MC, negative = underestimate\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << "# total wall time: " << util::format_duration(total.seconds())
            << "\n\n";
  return 0;
}

}  // namespace expmk::bench
