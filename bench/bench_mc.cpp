// bench/bench_mc.cpp
//
// Monte-Carlo trial-throughput benchmark: the allocation-free CSR kernel
// vs the pre-CSR legacy kernel on a >= 1000-task LU DAG (geometric retry,
// the paper's 300k-trial regime), plus the engine's thread-count
// bit-identity check. Emits BENCH_mc.json so the perf trajectory is
// tracked from this PR onward.
//
//   ./bench_mc [trials] [k] [pfail] [--strict]
//                       (defaults: 300000, 14 -> 1015 tasks, 0.01)
//   --strict: exit non-zero if the speedup falls under the 3x acceptance
//   bar — for controlled perf runs; CI machines are too noisy to gate on
//   wall-clock ratios, so CI runs without it and tracks the JSON instead.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/failure_model.hpp"
#include "gen/lu.hpp"
#include "legacy_trial.hpp"
#include "mc/engine.hpp"
#include "mc/trial.hpp"
#include "prob/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;

double checksum_guard = 0.0;  // keeps the trial loops from being elided

double time_legacy(const graph::Dag& g, const core::FailureModel& model,
                   std::uint64_t trials, std::uint64_t seed) {
  const bench::LegacyTrialContext ctx(g, model, core::RetryModel::Geometric);
  std::vector<double> durations;
  const util::Timer timer;
  for (std::uint64_t t = 0; t < trials; ++t) {
    prob::McRng rng(seed, t);
    checksum_guard += bench::legacy_run_trial(ctx, rng, durations);
  }
  return timer.seconds();
}

double time_csr(const graph::Dag& g, const core::FailureModel& model,
                std::uint64_t trials, std::uint64_t seed) {
  const mc::TrialContext ctx(g, model, core::RetryModel::Geometric);
  std::vector<double> finish(g.task_count());
  const util::Timer timer;
  for (std::uint64_t t = 0; t < trials; ++t) {
    prob::McRng rng(seed, t);
    checksum_guard += mc::run_trial_csr(ctx, rng, finish);
  }
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  // Clamp to >= 1: garbage or "0" would otherwise divide by zero below
  // and poison BENCH_mc.json with non-finite values.
  const std::uint64_t trials = std::max<std::uint64_t>(
      1, !positional.empty() ? std::strtoull(positional[0], nullptr, 10)
                             : 300'000);
  const int k = positional.size() > 1 ? std::atoi(positional[1]) : 14;
  const double pfail = positional.size() > 2 ? std::atof(positional[2]) : 0.01;
  const std::uint64_t seed = 2016;

  const auto g = gen::lu_dag(k);
  const auto model = core::calibrate(g, pfail);
  std::printf("bench_mc: LU k=%d (%zu tasks, %zu edges), pfail=%g, "
              "trials=%llu, geometric retry\n",
              k, g.task_count(), g.edge_count(), pfail,
              static_cast<unsigned long long>(trials));

  const double legacy_s = time_legacy(g, model, trials, seed);
  const double csr_s = time_csr(g, model, trials, seed);
  const double legacy_ns = legacy_s * 1e9 / static_cast<double>(trials);
  const double csr_ns = csr_s * 1e9 / static_cast<double>(trials);
  const double speedup = legacy_s / csr_s;
  std::printf("  legacy kernel: %.0f ns/trial (%.1f ktrials/s)\n", legacy_ns,
              1e6 / legacy_ns);
  std::printf("  csr kernel:    %.0f ns/trial (%.1f ktrials/s)\n", csr_ns,
              1e6 / csr_ns);
  std::printf("  speedup:       %.2fx\n", speedup);

  // Engine bit-identity across thread counts (the reproducibility
  // contract the CSR rewrite must preserve).
  mc::McConfig cfg;
  cfg.trials = std::min<std::uint64_t>(trials, 20'000);
  cfg.seed = seed;
  cfg.threads = 1;
  const auto r1 = mc::run_monte_carlo(g, model, cfg);
  cfg.threads = 2;
  const auto r2 = mc::run_monte_carlo(g, model, cfg);
  cfg.threads = 7;
  const auto r7 = mc::run_monte_carlo(g, model, cfg);
  const bool bit_identical = r1.mean == r2.mean && r2.mean == r7.mean &&
                             r1.variance == r2.variance &&
                             r2.variance == r7.variance;
  std::printf("  engine mean=%.17g (threads 1/2/7 bit-identical: %s)\n",
              r1.mean, bit_identical ? "yes" : "NO");

  bench::JsonWriter legacy_json;
  legacy_json.field("seconds", legacy_s).field("ns_per_trial", legacy_ns);
  bench::JsonWriter csr_json;
  csr_json.field("seconds", csr_s).field("ns_per_trial", csr_ns);
  bench::JsonWriter engine_json;
  engine_json.field("trials", cfg.trials)
      .field("mean", r1.mean)
      .field("variance", r1.variance)
      .field("threads_1_2_7_bit_identical", bit_identical);

  bench::JsonWriter out;
  out.field("bench", "mc_trial_throughput")
      .field("dag", "lu")
      .field("k", k)
      .field("tasks", g.task_count())
      .field("edges", g.edge_count())
      .field("pfail", pfail)
      .field("retry", "geometric")
      .field("trials", trials)
      .field("seed", seed)
      .object("legacy", legacy_json)
      .object("csr", csr_json)
      .field("speedup", speedup)
      .object("engine", engine_json);
  out.write_file("BENCH_mc.json");
  std::printf("  wrote BENCH_mc.json\n");

  // The acceptance bar for the CSR kernel PR; keep future regressions loud
  // (but only gate the exit code in --strict runs on quiet machines).
  if (speedup < 3.0) {
    std::printf("  WARNING: speedup %.2fx below the 3x acceptance bar\n",
                speedup);
    if (strict) return 1;
  }
  return 0;
}
