// bench/ablation_order2.cpp
//
// Extension experiment from the paper's conclusion: "our general approach
// ... can be used to obtain a second order approximation. While the
// improvement ... would be negligible for low failure rates, it may be
// significant for relatively high failure rates."
//
// Sweep pfail from harsh (0.05) to realistic (1e-4) on one DAG and report
// first-order vs second-order normalized differences against Monte-Carlo:
// the crossover behaviour predicted by the conclusion should be visible as
// a widening gap at high pfail.

#include <iostream>

#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "gen/cholesky.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("ablation_order2",
                "First- vs second-order accuracy across failure rates");
  cli.add_int("k", 8, "Cholesky tile count");
  cli.add_int("trials", 300'000, "Monte-Carlo trials");
  cli.add_int("seed", 424242, "Monte-Carlo master seed");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const auto g = gen::cholesky_dag(static_cast<int>(cli.get_int("k")));
  const std::vector<double> pfails = {0.05,  0.02,  0.01, 0.005,
                                      0.002, 0.001, 0.0001};

  util::Table table({"pfail", "lambda", "mc_mean", "FO_diff", "SO_diff",
                     "abs(FO)/abs(SO)", "t_FO", "t_SO"});
  for (const double pfail : pfails) {
    const auto model = core::calibrate(g, pfail);
    mc::McConfig cfg;
    cfg.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    cfg.retry = core::RetryModel::Geometric;
    const auto mc = mc::run_monte_carlo(g, model, cfg);

    const util::Timer t_fo;
    const double fo = core::first_order(g, model).expected_makespan();
    const double fo_seconds = t_fo.seconds();
    const util::Timer t_so;
    const double so =
        core::second_order(g, model, core::RetryModel::Geometric)
            .expected_makespan;
    const double so_seconds = t_so.seconds();

    const double fo_diff = (fo - mc.mean) / mc.mean;
    const double so_diff = (so - mc.mean) / mc.mean;
    table.begin_row();
    table.add_double(pfail);
    table.add_double(model.lambda);
    table.add_double(mc.mean);
    table.add_signed_sci(fo_diff);
    table.add_signed_sci(so_diff);
    table.add_double(so_diff != 0.0
                         ? std::abs(fo_diff) / std::abs(so_diff)
                         : 0.0);
    table.add(util::format_duration(fo_seconds));
    table.add(util::format_duration(so_seconds));
  }

  std::cout << "# Second-order ablation on Cholesky k=" << cli.get_int("k")
            << " (geometric retry model)\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << '\n';
  return 0;
}
