// bench/ablation_dodin_atoms.cpp
//
// Design-choice ablation (DESIGN.md): Dodin's distributions are capped at
// K atoms with mean-preserving merges. Sweep K and measure the estimate,
// the drift vs the largest budget, and the runtime — showing the paper's
// Dodin accuracy is limited by SP-ization, not by our truncation.

#include <cmath>
#include <iostream>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "spgraph/dodin.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("ablation_dodin_atoms",
                "Dodin estimate and cost vs distribution atom budget");
  cli.add_int("k", 6, "Cholesky tile count");
  cli.add_double("pfail", 0.001, "per-average-task failure probability");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const auto g = gen::cholesky_dag(static_cast<int>(cli.get_int("k")));
  const auto model = core::calibrate(g, cli.get_double("pfail"));

  const std::vector<std::size_t> budgets = {8, 16, 32, 64, 128, 256, 512};
  std::vector<double> estimates;
  std::vector<double> seconds;
  std::vector<std::size_t> duplications;
  for (const std::size_t k_atoms : budgets) {
    const util::Timer t;
    const auto r = sp::dodin_two_state(g, model, {.max_atoms = k_atoms});
    seconds.push_back(t.seconds());
    estimates.push_back(r.expected_makespan());
    duplications.push_back(r.duplications);
  }

  const double reference = estimates.back();
  util::Table table({"max_atoms", "estimate", "drift_vs_512", "duplications",
                     "time"});
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    table.begin_row();
    table.add_int(static_cast<std::int64_t>(budgets[i]));
    table.add_double(estimates[i]);
    table.add_signed_sci((estimates[i] - reference) / reference);
    table.add_int(static_cast<std::int64_t>(duplications[i]));
    table.add(util::format_duration(seconds[i]));
  }

  std::cout << "# Dodin atom-budget ablation on Cholesky k="
            << cli.get_int("k") << ", pfail=" << cli.get_double("pfail")
            << "\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << '\n';
  return 0;
}
