// bench/legacy_trial.hpp
//
// Faithful replica of the PRE-CSR Monte-Carlo trial kernel, kept solely as
// the baseline for BENCH_mc.json and the BM_McTrial_Legacy micro bench.
// Costs it pays that the production kernel (mc::run_trial_csr) no longer
// does: a heap-allocated finish[] per makespan evaluation, vector-of-vector
// adjacency chasing through the Dag, topo-order indirection, and TWO
// transcendental calls (log(u), log1p(-p)) per task per trial.

#pragma once

#include <cmath>
#include <vector>

#include "core/failure_model.hpp"
#include "graph/dag.hpp"
#include "graph/longest_path.hpp"
#include "graph/topological.hpp"
#include "prob/rng.hpp"

namespace expmk::bench {

/// Pre-CSR trial state: Dag pointer + topo order + per-task p_success.
struct LegacyTrialContext {
  const graph::Dag* dag = nullptr;
  std::vector<graph::TaskId> topo;
  std::vector<double> p_success;
  core::RetryModel retry = core::RetryModel::Geometric;
  int max_executions = 64;

  LegacyTrialContext(const graph::Dag& g, const core::FailureModel& model,
                     core::RetryModel retry_model)
      : dag(&g),
        topo(graph::topological_order(g)),
        p_success(core::success_probabilities(g, model)),
        retry(retry_model) {}
};

inline int legacy_sample_executions(const LegacyTrialContext& ctx,
                                    std::size_t i,
                                    prob::McRng& rng) {
  const double p = ctx.p_success[i];
  if (p >= 1.0) return 1;
  if (ctx.retry == core::RetryModel::TwoState) {
    return rng.bernoulli(p) ? 1 : 2;
  }
  const double u = rng.uniform_positive();
  const double f = std::floor(std::log(u) / std::log1p(-p));
  if (!(f < static_cast<double>(ctx.max_executions))) {
    return ctx.max_executions;
  }
  const int failures = f < 0.0 ? 0 : static_cast<int>(f);
  const int executions = failures + 1;
  return executions < ctx.max_executions ? executions : ctx.max_executions;
}

/// One pre-CSR trial: sample durations (resize per call, as the old kernel
/// did), then evaluate the allocating Dag longest path.
inline double legacy_run_trial(const LegacyTrialContext& ctx,
                               prob::McRng& rng,
                               std::vector<double>& durations) {
  const graph::Dag& g = *ctx.dag;
  durations.resize(g.task_count());
  for (std::size_t i = 0; i < g.task_count(); ++i) {
    durations[i] = g.weights()[i] *
                   static_cast<double>(legacy_sample_executions(ctx, i, rng));
  }
  return graph::critical_path_length(g, durations, ctx.topo);
}

}  // namespace expmk::bench
