// bench/fig_cholesky.cpp
//
// Reproduces Figures 4, 5, 6 of the paper: relative error (normalized
// difference with Monte-Carlo) of First Order, Dodin and Normal on tiled
// Cholesky DAGs, k in {4,6,8,10,12}, pfail in {1e-2, 1e-3, 1e-4}.

#include "fig_sweep.hpp"
#include "gen/cholesky.hpp"

int main(int argc, char** argv) {
  return expmk::bench::run_fig_sweep(
      argc, argv, "cholesky", /*first_figure=*/4,
      [](int k) { return expmk::gen::cholesky_dag(k); });
}
