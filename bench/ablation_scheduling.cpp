// bench/ablation_scheduling.cpp
//
// Future-work experiment from the paper's conclusion: "adapt existing list
// scheduling algorithms ... that rely on our proposed approximation to
// make scheduling decisions."
//
// Compare CP list scheduling with classical bottom levels vs the paper's
// failure-aware (first-order expected) bottom levels, under fault
// injection, across processor counts. Reports mean achieved makespans and
// the relative improvement.

#include <iostream>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "sched/fault_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("ablation_scheduling",
                "CP vs failure-aware CP list scheduling under faults");
  cli.add_int("k", 8, "tile count");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_int("runs", 2000, "fault-injection runs per configuration");
  cli.add_int("seed", 555, "fault-injection master seed");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const int k = static_cast<int>(cli.get_int("k"));
  struct Class {
    const char* name;
    graph::Dag dag;
  };
  std::vector<Class> classes;
  classes.push_back({"cholesky", gen::cholesky_dag(k)});
  classes.push_back({"lu", gen::lu_dag(k)});

  util::Table table({"class", "P", "mean_CP", "mean_aware", "improvement",
                     "ff_CP", "ci95_CP"});
  for (const auto& c : classes) {
    const auto model = core::calibrate(c.dag, cli.get_double("pfail"));
    const auto classic =
        sched::priorities(c.dag, sched::PriorityKind::BottomLevel, model);
    const auto aware = sched::priorities(
        c.dag, sched::PriorityKind::FailureAwareBottomLevel, model);

    for (const std::size_t p : {2u, 4u, 8u, 16u}) {
      const sched::Machine machine(p);
      sched::FaultSimConfig cfg;
      cfg.runs = static_cast<std::uint64_t>(cli.get_int("runs"));
      cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      const auto r_classic =
          sched::simulate_with_faults(c.dag, classic, machine, model, cfg);
      const auto r_aware =
          sched::simulate_with_faults(c.dag, aware, machine, model, cfg);

      table.begin_row();
      table.add(c.name);
      table.add_int(static_cast<std::int64_t>(p));
      table.add_double(r_classic.makespan.mean());
      table.add_double(r_aware.makespan.mean());
      table.add_signed_sci((r_classic.makespan.mean() -
                            r_aware.makespan.mean()) /
                           r_classic.makespan.mean());
      table.add_double(r_classic.failure_free_makespan);
      table.add_double(r_classic.makespan.ci_half_width(0.95));
    }
  }

  std::cout << "# Failure-aware scheduling ablation, k=" << k << ", pfail="
            << cli.get_double("pfail")
            << " (improvement > 0 means failure-aware wins)\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << '\n';
  return 0;
}
