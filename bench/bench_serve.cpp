// bench/bench_serve.cpp
//
// Serving-layer benchmark: what does the expmk_serve stack (JSON protocol
// parse -> content-hash cache -> shed admission -> batcher ->
// evaluate_many) cost on top of calling exp::evaluate_many directly?
//
// Arms (one LU cell, a {fo, so, corlca} method mix):
//   raw_evaluate_many  one evaluate_many call over the whole request
//                      list on a compiled scenario — the floor.
//   serve_warm_hash    by-hash requests against a hot cache: the
//                      steady-state serving path (no graph bytes on the
//                      wire, no parse of the taskgraph).
//   serve_warm_inline  inline-graph requests against a hot cache: pays
//                      JSON + taskgraph parse + hashing per request, but
//                      never recompiles.
//   serve_cold         every request a distinct cell (pfail varies), so
//                      every request compiles a scenario — the cache-miss
//                      floor, reported for contrast.
//
// Emits BENCH_serve.json (requests_per_sec, p50/p99 request latency per
// arm) with row-level `tol` / `p99_us_tol` gates for compare_bench.py —
// multithreaded tail latencies get a far wider gate than kernel loops.
// The acceptance bar tracked here: warm-path throughput within 2x of
// raw_evaluate_many on the same mix (`warm_hash_vs_raw_ratio`).
//
//   ./bench_serve [requests] [k]        (defaults: 3000, 10)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/failure_model.hpp"
#include "exp/evaluate_many.hpp"
#include "gen/lu.hpp"
#include "graph/serialize.hpp"
#include "scenario/content_hash.hpp"
#include "scenario/scenario.hpp"
#include "serve/engine.hpp"
#include "util/json_writer.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;

const char* const kMix[] = {"fo", "so", "corlca"};
constexpr std::size_t kMixSize = sizeof kMix / sizeof kMix[0];

struct ArmResult {
  std::string arm;
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Drives `n` payload-producing requests through one engine connection
/// and waits for every response; fills per-request latencies.
template <typename PayloadFn>
ArmResult run_engine_arm(const std::string& name, serve::ServeEngine& engine,
                         std::size_t n, PayloadFn payload_for) {
  serve::ServeEngine::Connection conn;
  std::vector<double> latency_us(n, 0.0);
  std::atomic<std::size_t> completed{0};
  std::mutex m;
  std::condition_variable cv;

  util::Timer wall;
  for (std::size_t i = 0; i < n; ++i) {
    util::Timer submitted;
    engine.handle(payload_for(i), conn,
                  [&, i, submitted](std::string&&) {
                    latency_us[i] = submitted.seconds() * 1e6;
                    // Count under the lock so the waiter cannot observe
                    // the final count (and destroy cv) mid-notify.
                    const std::lock_guard<std::mutex> lock(m);
                    if (completed.fetch_add(1, std::memory_order_acq_rel) +
                            1 ==
                        n) {
                      cv.notify_one();
                    }
                  });
  }
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] {
      return completed.load(std::memory_order_acquire) == n;
    });
  }
  ArmResult r;
  r.arm = name;
  r.seconds = wall.seconds();
  r.requests_per_sec = static_cast<double>(n) / r.seconds;
  std::sort(latency_us.begin(), latency_us.end());
  r.p50_us = quantile(latency_us, 0.50);
  r.p99_us = quantile(latency_us, 0.99);
  return r;
}

/// Open-loop (fixed-arrival-rate) load: request i is dispatched at its
/// SCHEDULED time t0 + i/rate, and its latency is measured from that
/// scheduled instant — so a stalled server accrues queueing delay
/// instead of silently slowing the generator down (the closed-loop arms
/// above suffer that coordinated omission by construction).
template <typename PayloadFn>
ArmResult run_open_loop_arm(const std::string& name,
                            serve::ServeEngine& engine, std::size_t n,
                            double rate_per_sec, PayloadFn payload_for) {
  using Clock = std::chrono::steady_clock;
  serve::ServeEngine::Connection conn;
  std::vector<double> latency_us(n, 0.0);
  std::atomic<std::size_t> completed{0};
  std::mutex m;
  std::condition_variable cv;

  const auto t0 = Clock::now();
  const double period_ns = 1e9 / rate_per_sec;
  util::Timer wall;
  for (std::size_t i = 0; i < n; ++i) {
    const auto scheduled =
        t0 + std::chrono::nanoseconds(static_cast<std::int64_t>(
                 period_ns * static_cast<double>(i)));
    std::this_thread::sleep_until(scheduled);
    engine.handle(payload_for(i), conn,
                  [&, i, scheduled](std::string&&) {
                    latency_us[i] =
                        std::chrono::duration<double, std::micro>(
                            Clock::now() - scheduled)
                            .count();
                    const std::lock_guard<std::mutex> lock(m);
                    if (completed.fetch_add(1, std::memory_order_acq_rel) +
                            1 ==
                        n) {
                      cv.notify_one();
                    }
                  });
  }
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] {
      return completed.load(std::memory_order_acquire) == n;
    });
  }
  ArmResult r;
  r.arm = name;
  r.seconds = wall.seconds();
  r.requests_per_sec = static_cast<double>(n) / r.seconds;
  std::sort(latency_us.begin(), latency_us.end());
  r.p50_us = quantile(latency_us, 0.50);
  r.p99_us = quantile(latency_us, 0.99);
  return r;
}

std::string eval_payload(const std::string& graph_text, double pfail,
                         const char* method) {
  util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "eval");
  w.field("graph", graph_text);
  w.field("pfail", pfail);
  w.field("method", method);
  w.field("trials", 2000);
  return w.str();
}

std::string hash_payload(const std::string& hash_hex, const char* method) {
  util::JsonWriter w;
  w.field("v", 1);
  w.field("type", "eval");
  w.field("hash", hash_hex);
  w.field("method", method);
  w.field("trials", 2000);
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t requests =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 10;
  const double pfail = 0.001;

  const graph::Dag g = gen::lu_dag(k);
  const std::string graph_text = graph::to_taskgraph(g);
  const core::FailureModel model = core::calibrate(g, pfail);
  const scenario::FailureSpec spec = scenario::FailureSpec(model);
  const std::string hash_hex = scenario::content_hash_hex(
      scenario::content_hash(g, spec, core::RetryModel::TwoState));

  std::printf("bench_serve: LU k=%d (%zu tasks), %zu requests, mix "
              "{fo, so, corlca}\n",
              k, g.task_count(), requests);

  std::vector<ArmResult> arms;

  // ---- arm: raw evaluate_many (the floor) ---------------------------
  {
    const scenario::Scenario sc =
        scenario::Scenario::compile(g, spec, core::RetryModel::TwoState);
    std::vector<exp::EvalRequest> reqs(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      reqs[i].method = kMix[i % kMixSize];
      reqs[i].options.mc_trials = 2000;
    }
    util::Timer wall;
    const auto results = exp::evaluate_many(sc, reqs);
    ArmResult r;
    r.arm = "raw_evaluate_many";
    r.seconds = wall.seconds();
    r.requests_per_sec = static_cast<double>(requests) / r.seconds;
    // keep the results from being elided
    if (!results.empty() && !(results[0].mean == -1.0)) arms.push_back(r);
  }

  // ---- serving arms: one engine, shed disabled ----------------------
  serve::EngineConfig config;
  config.shed.queue_l1 = config.shed.queue_l2 = config.shed.queue_hard =
      static_cast<std::size_t>(-1) / 2;  // measure latency, don't shed
  config.shed.p99_l1_us = config.shed.p99_l2_us = 1e18;
  serve::ServeEngine engine(config);

  {
    // Prime the cache so the warm arms never compile.
    serve::ServeEngine::Connection conn;
    (void)engine.handle_sync(eval_payload(graph_text, pfail, "fo"), conn);
    arms.push_back(run_engine_arm(
        "serve_warm_hash", engine, requests, [&](std::size_t i) {
          return hash_payload(hash_hex, kMix[i % kMixSize]);
        }));
    arms.push_back(run_engine_arm(
        "serve_warm_inline", engine, requests, [&](std::size_t i) {
          return eval_payload(graph_text, pfail, kMix[i % kMixSize]);
        }));
  }

  // ---- open-loop arm: fixed arrival rate at half the measured warm
  // throughput, latency from the SCHEDULED send time --------------------
  double open_loop_rate = 0.0;
  {
    double warm_rps = 0.0;
    for (const ArmResult& r : arms) {
      if (r.arm == "serve_warm_hash") warm_rps = r.requests_per_sec;
    }
    // Half utilization keeps the queue stable on any machine; the rate
    // is recorded on the row so runs are interpretable.
    open_loop_rate = std::clamp(warm_rps * 0.5, 100.0, 20'000.0);
    arms.push_back(run_open_loop_arm(
        "serve_open_loop_hash", engine,
        std::min<std::size_t>(requests, 2000), open_loop_rate,
        [&](std::size_t i) {
          return hash_payload(hash_hex, kMix[i % kMixSize]);
        }));
  }

  // ---- cold arm: every request a distinct cell (bounded count) ------
  const std::size_t cold_requests = std::min<std::size_t>(requests, 256);
  arms.push_back(run_engine_arm(
      "serve_cold", engine, cold_requests, [&](std::size_t i) {
        // A distinct pfail per request -> distinct content hash -> a
        // compile per request.
        const double p = 1e-4 + 1e-6 * static_cast<double>(i + 1);
        return eval_payload(graph_text, p, kMix[i % kMixSize]);
      }));

  double raw_rps = 0.0, warm_hash_rps = 0.0;
  for (const ArmResult& r : arms) {
    if (r.arm == "raw_evaluate_many") raw_rps = r.requests_per_sec;
    if (r.arm == "serve_warm_hash") warm_hash_rps = r.requests_per_sec;
    std::printf("  %-18s %9.3f ms  %10.0f req/s  p50 %8.1f us  p99 "
                "%8.1f us\n",
                r.arm.c_str(), r.seconds * 1e3, r.requests_per_sec,
                r.p50_us, r.p99_us);
  }
  const double warm_vs_raw = raw_rps > 0.0 ? raw_rps / warm_hash_rps : 0.0;
  std::printf("  warm-hash overhead vs raw: %.2fx (acceptance: <= 2x)\n",
              warm_vs_raw);

  const serve::CacheStats cs = engine.cache_stats();
  std::printf("  cache: %llu hits, %llu misses, %llu compiles\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.compiles));

  std::vector<bench::JsonWriter> rows;
  for (const ArmResult& r : arms) {
    bench::JsonWriter w;
    const bool open_loop = r.arm == "serve_open_loop_hash";
    w.field("bench", "serve")
        .field("arm", r.arm)
        .field("seconds", r.seconds)
        .field("requests_per_sec", r.requests_per_sec)
        // Serving latencies on shared CI runners are noisy; gate wall
        // time at 50% and the tail at 150% instead of the default 10%.
        // Open-loop rows get the widest gates: their wall time IS the
        // arrival schedule and their quantiles include scheduler jitter.
        .field("tol", open_loop ? 2.0 : 0.5);
    if (r.arm != "raw_evaluate_many") {
      w.field("p50_us", r.p50_us)
          .field("p99_us", r.p99_us)
          .field("p99_us_tol", open_loop ? 3.0 : 1.5);
    }
    if (open_loop) w.field("offered_rate_per_sec", open_loop_rate);
    rows.push_back(std::move(w));
  }
  bench::JsonWriter out;
  out.field("bench", "serve")
      .field("dag", "lu")
      .field("k", k)
      .field("tasks", g.task_count())
      .field("requests", requests)
      .field("method_mix", "fo,so,corlca")
      .field("warm_hash_vs_raw_ratio", warm_vs_raw)
      .field("cache_hits", cs.hits)
      .field("cache_compiles", cs.compiles)
      .array("arms", rows);
  out.write_file("BENCH_serve.json");
  std::printf("  wrote BENCH_serve.json\n");
  return 0;
}
