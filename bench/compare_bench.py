#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on timing regressions.

Usage:
    compare_bench.py BASELINE.json CANDIDATE.json [--tolerance 0.10]

Walks both JSON trees in lockstep and compares every timing metric
(keys ending in `_us`, `_ns`, `ns_per_trial`, `seconds`). A metric that
is more than `tolerance` slower in the candidate than in the baseline is
a regression; any regression makes the script exit 1. Rows are matched
by their identity keys (op/size/method/tasks/...), so reordering rows or
adding new ones (e.g. a wider convolve grid) is fine — only metrics
present in BOTH files are compared. Throughput metrics (`*_per_sec`,
`*trials_per_sec`, `speedup`) are reported for context but regressions
in them are derived from the timing keys, so they don't double-fail.

Rows can widen the gate for individual metrics: a `"tol": 0.5` field on
a row overrides --tolerance for every timing metric in that row, and a
`"<metric>_tol"` sibling (e.g. `"p99_us_tol": 1.5`) overrides it for one
metric — tail latencies of a multithreaded server deserve a wider gate
than a deterministic kernel loop. The candidate file's tolerance wins
over the baseline's (the candidate ships the current gate); both lose to
nothing — absent fields fall back to --tolerance.

Exit codes: 0 ok (or skipped via --allow-missing), 1 regression found,
2 usage/parse error. With --allow-missing a nonexistent baseline or
candidate file is a skip, not an error — for CI lanes where the baseline
artifact is only sometimes present.
"""

from __future__ import annotations

import argparse
import json
import sys

TIMING_SUFFIXES = ("_us", "_ns", "ns_per_trial", "seconds")
# Resource metrics gated like timings: bigger is a regression. rss_bytes
# rows (bench_scale) pin peak memory at the million-task scale.
RESOURCE_SUFFIXES = ("rss_bytes",)
IDENTITY_KEYS = ("op", "size", "method", "tasks", "dag", "k", "bench", "retry", "arm")


def is_timing_key(key: str) -> bool:
    return (
        key.endswith(TIMING_SUFFIXES)
        or key.endswith(RESOURCE_SUFFIXES)
        or key in ("seconds", "ns_per_trial")
    )


def row_identity(row: dict) -> tuple:
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def walk(node, path, out):
    """Collect {metric_path: (value, tolerance-or-None)} for every timing
    metric in the tree. The tolerance comes from the metric's row: a
    `<metric>_tol` sibling first, then the row-wide `tol` field."""
    if isinstance(node, dict):
        ident = row_identity(node) if any(k in node for k in IDENTITY_KEYS) else ()
        row_tol = node.get("tol")
        for key, value in node.items():
            sub = path
            if ident and isinstance(value, (int, float)):
                sub = path + (ident,)
            if (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and is_timing_key(key)
            ):
                tol = node.get(f"{key}_tol", row_tol)
                out[sub + (key,)] = (float(value), None if tol is None else float(tol))
            else:
                walk(value, sub + (key,), out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            # Rows carry their own identity; fall back to index for plain lists.
            key = row_identity(value) if isinstance(value, dict) else i
            walk(value, path + (key,), out)


def fmt_path(path: tuple) -> str:
    parts = []
    for p in path:
        if isinstance(p, tuple):
            parts.append("[" + " ".join(f"{k}={v}" for k, v in p) + "]")
        else:
            parts.append(str(p))
    return "/".join(parts)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown before failing (default 0.10 = 10%%)",
    )
    ap.add_argument(
        "--allow-missing",
        action="store_true",
        help="exit 0 (skip) when either input file does not exist — for CI "
        "lanes that only sometimes produce a baseline artifact",
    )
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.candidate) as f:
            cand = json.load(f)
    except FileNotFoundError as exc:
        if args.allow_missing:
            print(f"compare_bench: skipped (--allow-missing): {exc}")
            return 0
        print(f"compare_bench: cannot load inputs: {exc}", file=sys.stderr)
        return 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare_bench: cannot load inputs: {exc}", file=sys.stderr)
        return 2

    base_metrics: dict = {}
    cand_metrics: dict = {}
    walk(base, (), base_metrics)
    walk(cand, (), cand_metrics)

    shared = sorted(set(base_metrics) & set(cand_metrics), key=fmt_path)
    if not shared:
        print("compare_bench: no shared timing metrics between files", file=sys.stderr)
        return 2

    regressions = []
    improvements = 0
    for path in shared:
        b, btol = base_metrics[path]
        c, ctol = cand_metrics[path]
        if b <= 0.0:
            continue
        tol = ctol if ctol is not None else (btol if btol is not None else args.tolerance)
        ratio = c / b
        tag = ""
        if ratio > 1.0 + tol:
            regressions.append((path, b, c, ratio))
            tag = "  << REGRESSION"
        elif ratio < 1.0 - tol:
            improvements += 1
            tag = "  (faster)"
        print(f"  {fmt_path(path):<80s} base {b:12.3f}  cand {c:12.3f}  x{ratio:5.2f}{tag}")

    only_base = len(set(base_metrics) - set(cand_metrics))
    only_cand = len(set(cand_metrics) - set(base_metrics))
    print(
        f"compare_bench: {len(shared)} metrics compared, {improvements} faster, "
        f"{len(regressions)} regressed (>{args.tolerance:.0%}); "
        f"{only_base} baseline-only, {only_cand} candidate-only metrics skipped"
    )
    if regressions:
        print("compare_bench: FAIL — regressions:", file=sys.stderr)
        for path, b, c, ratio in regressions:
            print(f"  {fmt_path(path)}: {b:.3f} -> {c:.3f} ({ratio:.2f}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
