#!/usr/bin/env python3
"""Fit the query planner's per-method cost coefficients from the BENCH corpus.

The planner (src/exp/plan.hpp) predicts the wall-clock cost of every
evaluation method as

    predicted_us = coeff[method] * work(method, features)

where `work` is a fixed per-method complexity formula (mirrored EXACTLY by
cost_work() in src/exp/plan.cpp — change one, change both) and `coeff` is
the us-per-unit-work constant this script fits from the committed
benchmark corpus:

    BENCH_workspace.json   fo/so/corlca/clark pooled steady-state rows
    BENCH_scenario.json    fo/so/sculli/corlca/bounds/mc compiled rows
    BENCH_mc.json          the CSR MC engine ns_per_trial row
    BENCH_dist.json        sp/dodin end-to-end flat rows (tasks/edges/atoms)
    bench/baselines/scale_v1/BENCH_scale.json   fo + sp.hier at 1e4..1e6 tasks

The fit is the geometric mean of us/work over a method's rows — the
closed-form least-squares solution for log(us) = log(coeff) + log(work),
robust to the orders-of-magnitude size spread of the corpus. Methods with
no corpus rows get a documented measured-default (exact, exact.geo) or
inherit a proxy method's fitted coefficient (cmc <- mc, dodin.hier <-
dodin, mc.hier <- mc); their kCostFitRows entry is 0, which the planner
reads as LOW CONFIDENCE and answers with the bounds->sp/dodin->pilot-MC
escalation chain instead of trusting the prediction.

The output is a generated header committed to the repo
(src/exp/cost_model_gen.hpp). Regeneration is byte-deterministic from the
corpus files, so CI runs `fit_cost_model.py --check` to ensure the
committed header matches the committed corpus.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

# Planner method order — MUST match exp::PlanMethod in src/exp/plan.hpp.
METHODS = [
    "exact", "exact.geo", "fo", "so", "sp", "dodin", "sculli", "corlca",
    "clark", "bounds", "mc", "cmc", "sp.hier", "dodin.hier", "mc.hier",
]

# Measured fallbacks for methods the corpus cannot cover (us per unit
# work). exact: steady-state CLI timings 2369us @ 14 tasks (V+E=35),
# 9295us @ 16 (32), 134810us @ 20 (50) -> geomean of us / (2^V * (V+E)).
# exact.geo: 577us @ 9 tasks -> us / (3^V * V).
MEASURED_DEFAULTS = {
    "exact": 3.7e-3,
    "exact.geo": 3.3e-3,
}

# Methods with no direct corpus rows inherit a fitted proxy (x a factor):
# cmc is the MC engine plus a rejection loop; the .hier variants run the
# same kernels per SP-tree module.
PROXIES = {
    "cmc": ("mc", 1.3),
    "dodin.hier": ("dodin", 1.0),
    "mc.hier": ("mc", 1.0),
}

# bench_scale evaluates sp.hier with EvalOptions::sp_max_atoms = 128
# (bench/bench_scale.cpp); the scale rows don't carry the knob.
SCALE_SP_HIER_ATOMS = 128


def work(method: str, tasks: float, edges: float, atoms: float,
         trials: float) -> float:
    """Per-method unit-work formula. Mirror of cost_work() in plan.cpp."""
    v, ve = tasks, tasks + edges
    if method == "exact":
        return 2.0 ** min(v, 50) * ve
    if method == "exact.geo":
        return 3.0 ** min(v, 30) * v
    if method in ("fo", "sculli", "corlca", "bounds"):
        return ve
    if method in ("so", "clark"):
        return v * v
    if method in ("sp", "dodin", "sp.hier", "dodin.hier"):
        return ve * max(atoms, 1.0)
    if method in ("mc", "cmc", "mc.hier"):
        return max(trials, 1.0) * ve
    raise ValueError(f"no work formula for method '{method}'")


def load(path: str):
    with open(path) as f:
        return json.load(f)


def collect_rows(repo: str):
    """Yields (method, us, tasks, edges, atoms, trials) observations."""
    rows = []

    ws = load(os.path.join(repo, "BENCH_workspace.json"))
    for r in ws.get("rows", []):
        rows.append((r["method"], r["pooled_us"], r["tasks"], r["edges"],
                     0.0, 0.0))

    sc = load(os.path.join(repo, "BENCH_scenario.json"))
    for m in sc.get("methods", []):
        name = m["method"]
        if name.startswith("bounds"):
            name = "bounds"
        rows.append((name, m["compiled_us"], sc["tasks"], sc["edges"], 0.0,
                     float(sc.get("mc_trials", 0))))

    mc = load(os.path.join(repo, "BENCH_mc.json"))
    rows.append(("mc", mc["csr"]["seconds"] * 1e6, mc["tasks"], mc["edges"],
                 0.0, float(mc["trials"])))

    dist = load(os.path.join(repo, "BENCH_dist.json"))
    for r in dist.get("rows", []):
        if r.get("op") in ("sp", "dodin") and "tasks" in r:
            rows.append((r["op"], r["flat_us"], r["tasks"], r["edges"],
                         float(r["atoms"]), 0.0))

    scale = load(
        os.path.join(repo, "bench", "baselines", "scale_v1",
                     "BENCH_scale.json"))
    for r in scale.get("rows", []):
        if r.get("op") != "scale":
            continue
        rows.append(("fo", r["fo_us"], r["tasks"], r["edges"], 0.0, 0.0))
        if r.get("sp_hier_supported", False):
            rows.append(("sp.hier", r["sp_hier_us"], r["tasks"], r["edges"],
                         float(SCALE_SP_HIER_ATOMS), 0.0))

    return rows


def fit(rows):
    """Geometric-mean fit of us/work per method -> (coeff, fit_rows)."""
    logs: dict[str, list[float]] = {m: [] for m in METHODS}
    for method, us, tasks, edges, atoms, trials in rows:
        if method not in logs:
            continue  # corpus methods outside the planner's catalogue
        w = work(method, float(tasks), float(edges), atoms, trials)
        if w > 0.0 and us > 0.0:
            logs[method].append(math.log(us / w))

    coeff: dict[str, float] = {}
    nrows: dict[str, int] = {}
    for m in METHODS:
        if logs[m]:
            coeff[m] = math.exp(sum(logs[m]) / len(logs[m]))
            nrows[m] = len(logs[m])
    for m in METHODS:
        if m in coeff:
            continue
        nrows[m] = 0
        if m in MEASURED_DEFAULTS:
            coeff[m] = MEASURED_DEFAULTS[m]
        elif m in PROXIES:
            proxy, factor = PROXIES[m]
            coeff[m] = coeff[proxy] * factor  # proxies precede in METHODS
        else:
            raise SystemExit(
                f"fit_cost_model: no rows, default, or proxy for '{m}'")
    return coeff, nrows


def render(coeff, nrows) -> str:
    lines = []
    lines.append("// src/exp/cost_model_gen.hpp")
    lines.append("//")
    lines.append("// GENERATED by bench/fit_cost_model.py from the committed")
    lines.append("// BENCH corpus — do not edit by hand; regenerate with")
    lines.append("//")
    lines.append("//     python3 bench/fit_cost_model.py")
    lines.append("//")
    lines.append("// and verify with --check (CI does). Coefficients are")
    lines.append("// us per unit of cost_work() (src/exp/plan.cpp); a zero")
    lines.append("// kCostFitRows entry marks a default/proxy coefficient the")
    lines.append("// planner must treat as LOW CONFIDENCE.")
    lines.append("")
    lines.append("#pragma once")
    lines.append("")
    lines.append("#include <cstddef>")
    lines.append("")
    lines.append("namespace expmk::exp::gen {")
    lines.append("")
    lines.append("inline constexpr int kCostModelVersion = 1;")
    lines.append(
        f"inline constexpr std::size_t kCostMethodCount = {len(METHODS)};")
    lines.append("")
    lines.append("/// PlanMethod order (src/exp/plan.hpp).")
    names = ", ".join(f'"{m}"' for m in METHODS)
    lines.append(
        f"inline constexpr const char* kCostMethodNames[{len(METHODS)}] = {{")
    lines.append(f"    {names}}};")
    lines.append("")
    lines.append("/// us per unit work, geometric-mean fit over the corpus.")
    lines.append(
        f"inline constexpr double kCostCoeffUs[{len(METHODS)}] = {{")
    for m in METHODS:
        lines.append(f"    {coeff[m]:.17g},  // {m}")
    lines.append("};")
    lines.append("")
    lines.append("/// Corpus rows behind each fit; 0 = default/proxy value.")
    lines.append(f"inline constexpr int kCostFitRows[{len(METHODS)}] = {{")
    lines.append("    " + ", ".join(str(nrows[m]) for m in METHODS) + "};")
    lines.append("")
    lines.append("}  // namespace expmk::exp::gen")
    return "\n".join(lines) + "\n"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root holding the BENCH_*.json corpus")
    ap.add_argument("--out", default=None,
                    help="output header (default src/exp/cost_model_gen.hpp)")
    ap.add_argument("--check", action="store_true",
                    help="regenerate in memory and fail if the committed "
                    "header differs (CI drift gate)")
    ap.add_argument("--verbose", action="store_true",
                    help="print per-row residual ratios")
    args = ap.parse_args()

    out = args.out or os.path.join(args.repo, "src", "exp",
                                   "cost_model_gen.hpp")
    rows = collect_rows(args.repo)
    coeff, nrows = fit(rows)

    if args.verbose:
        for method, us, tasks, edges, atoms, trials in rows:
            if method not in coeff:
                continue
            w = work(method, float(tasks), float(edges), atoms, trials)
            pred = coeff[method] * w
            print(f"  {method:10s} V={tasks:<8} us={us:12.2f} "
                  f"pred={pred:12.2f} ratio={us / pred:6.2f}")

    text = render(coeff, nrows)
    if args.check:
        try:
            with open(out) as f:
                committed = f.read()
        except FileNotFoundError:
            print(f"fit_cost_model: --check: {out} does not exist",
                  file=sys.stderr)
            return 1
        if committed != text:
            print("fit_cost_model: --check FAILED — committed header is "
                  "stale; rerun python3 bench/fit_cost_model.py",
                  file=sys.stderr)
            return 1
        print(f"fit_cost_model: --check OK ({out} matches the corpus)")
        return 0

    with open(out, "w") as f:
        f.write(text)
    fitted = sum(1 for m in METHODS if nrows[m] > 0)
    print(f"fit_cost_model: wrote {out} "
          f"({fitted}/{len(METHODS)} methods fit from {len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
