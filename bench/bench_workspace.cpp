// bench/bench_workspace.cpp
//
// Pooled-vs-per-call microbenchmark for the workspace-pooled evaluation
// engine: the cost of one analytic evaluation of a compiled scenario
// through three paths, over {fo, so, corlca, clark} x DAG sizes:
//
//   (a) legacy   — evaluate(dag, model, retry, opt): compiles a fresh
//                  Scenario inside EVERY call (the pre-PR-3 cost
//                  structure, kept for scale);
//   (b) per_call — evaluate(sc, opt, fresh Workspace): the compiled
//                  scenario is shared but every call pays cold arenas,
//                  i.e. the PR-3 cost structure where each kernel heap-
//                  allocated its scratch vectors per call;
//   (c) pooled   — evaluate(sc, opt, warm Workspace): the steady-state
//                  serving path, zero allocations per call.
//
// Emits BENCH_workspace.json (speedup = per_call_us / pooled_us,
// legacy_speedup = legacy_us / pooled_us) so the amortization win is
// tracked from this PR onward. The interesting rows are the small-to-mid
// DAGs: there the scratch allocation IS a large share of the work, which
// is exactly the high-traffic regime (millions of cheap evaluations of a
// fixed graph) the workspace engine targets.
//
//   ./bench_workspace [reps] [pfail]   (defaults: 2000, 0.001)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "exp/workspace.hpp"
#include "gen/random_dags.hpp"
#include "scenario/scenario.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;

double checksum_guard = 0.0;  // keeps the evaluation loops from eliding

struct Row {
  std::string method;
  std::size_t tasks = 0;
  std::size_t edges = 0;
  double legacy_us = 0.0;
  double per_call_us = 0.0;
  double pooled_us = 0.0;
  double pooled_evals_per_sec = 0.0;
  double speedup = 0.0;         // per_call / pooled
  double legacy_speedup = 0.0;  // legacy / pooled
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t reps =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const double pfail = argc > 2 ? std::atof(argv[2]) : 0.001;

  // Erdos task counts give direct control of "<= 100-task DAGs", the
  // serving regime the acceptance bar names.
  const std::vector<int> sizes = {20, 60, 100};
  const std::vector<std::string> methods = {"fo", "so", "corlca", "clark"};
  const auto& reg = exp::EvaluatorRegistry::builtin();
  const auto retry = core::RetryModel::TwoState;

  exp::EvalOptions opt;
  opt.threads = 1;

  std::printf("bench_workspace: erdos DAGs, pfail=%g, %llu reps/method\n",
              pfail, static_cast<unsigned long long>(reps));

  std::vector<Row> rows;
  for (const int n : sizes) {
    const auto g = gen::erdos_dag(n, 0.2, 1234 + n);
    const auto model = core::calibrate(g, pfail);
    const auto sc =
        scenario::Scenario::compile(g, scenario::FailureSpec(model), retry);

    for (const std::string& name : methods) {
      const exp::Evaluator* e = reg.find(name);
      Row row;
      row.method = name;
      row.tasks = g.task_count();
      row.edges = g.edge_count();

      // (a) legacy per-call compile. The second-order pair sweep makes
      // full reps expensive at n=100; scale the rep count down — timings
      // are per-call averages either way.
      const std::uint64_t legacy_reps = std::max<std::uint64_t>(reps / 10, 1);
      {
        const util::Timer timer;
        for (std::uint64_t i = 0; i < legacy_reps; ++i) {
          checksum_guard += e->evaluate(g, model, retry, opt).mean;
        }
        row.legacy_us =
            timer.seconds() * 1e6 / static_cast<double>(legacy_reps);
      }

      // (b) compiled scenario, cold workspace per call.
      {
        const util::Timer timer;
        for (std::uint64_t i = 0; i < reps; ++i) {
          exp::Workspace cold;
          checksum_guard += e->evaluate(sc, opt, cold).mean;
        }
        row.per_call_us = timer.seconds() * 1e6 / static_cast<double>(reps);
      }

      // (c) compiled scenario, one warm pooled workspace.
      {
        exp::Workspace pooled;
        checksum_guard += e->evaluate(sc, opt, pooled).mean;  // warm-up
        const util::Timer timer;
        for (std::uint64_t i = 0; i < reps; ++i) {
          checksum_guard += e->evaluate(sc, opt, pooled).mean;
        }
        const double seconds = timer.seconds();
        row.pooled_us = seconds * 1e6 / static_cast<double>(reps);
        row.pooled_evals_per_sec =
            seconds > 0.0 ? static_cast<double>(reps) / seconds : 0.0;
      }

      row.speedup =
          row.pooled_us > 0.0 ? row.per_call_us / row.pooled_us : 0.0;
      row.legacy_speedup =
          row.pooled_us > 0.0 ? row.legacy_us / row.pooled_us : 0.0;
      std::printf(
          "  n=%3zu %-8s legacy %9.2f us   per-call %9.2f us   pooled "
          "%9.2f us (%.0f evals/s)   speedup %5.2fx (vs legacy %6.2fx)\n",
          row.tasks, row.method.c_str(), row.legacy_us, row.per_call_us,
          row.pooled_us, row.pooled_evals_per_sec, row.speedup,
          row.legacy_speedup);
      rows.push_back(row);
    }
  }

  std::vector<bench::JsonWriter> json_rows;
  json_rows.reserve(rows.size());
  for (const Row& row : rows) {
    bench::JsonWriter w;
    w.field("method", row.method)
        .field("tasks", row.tasks)
        .field("edges", row.edges)
        .field("legacy_us", row.legacy_us)
        .field("per_call_us", row.per_call_us)
        .field("pooled_us", row.pooled_us)
        .field("pooled_evals_per_sec", row.pooled_evals_per_sec)
        .field("speedup", row.speedup)
        .field("legacy_speedup", row.legacy_speedup);
    json_rows.push_back(std::move(w));
  }

  bench::JsonWriter out;
  out.field("bench", "workspace_pooled_vs_per_call")
      .field("dag", "erdos")
      .field("pfail", pfail)
      .field("retry", "two_state")
      .field("reps", reps)
      .array("rows", json_rows);
  out.write_file("BENCH_workspace.json");
  std::printf("  wrote BENCH_workspace.json (checksum %g)\n",
              checksum_guard);
  return 0;
}
