// bench/fig_lu.cpp
//
// Reproduces Figures 7, 8, 9 of the paper: relative error of First Order,
// Dodin and Normal on tiled LU DAGs, k in {4,6,8,10,12}, pfail in
// {1e-2, 1e-3, 1e-4}.

#include "fig_sweep.hpp"
#include "gen/lu.hpp"

int main(int argc, char** argv) {
  return expmk::bench::run_fig_sweep(argc, argv, "lu", /*first_figure=*/7,
                                     [](int k) { return expmk::gen::lu_dag(k); });
}
