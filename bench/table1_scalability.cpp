// bench/table1_scalability.cpp
//
// Reproduces Table I of the paper: LU with k = 20 (2870 tasks) at
// pfail = 1e-4 — normalized difference with Monte-Carlo AND execution
// time for Dodin, Normal and First Order. The paper reports:
//     Dodin: -0.97, ~2 min;  Normal: 954e-6, ~20 min;
//     First Order: 7e-6, < 1 s.
// (Our implementations are native C++, so the absolute times are smaller
// across the board; the ordering — First Order orders of magnitude faster
// and more accurate — is the reproducible claim. See EXPERIMENTS.md for
// the discussion of Dodin's sign.)

#include <iostream>

#include "bench_common.hpp"
#include "gen/lu.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("table1_scalability",
                "Reproduces Table I: LU k=20, pfail=1e-4, error + runtime");
  cli.add_int("k", 20, "tile count (paper: 20 -> 2870 tasks)");
  cli.add_double("pfail", 0.0001, "per-average-task failure probability");
  cli.add_int("trials", 300'000, "Monte-Carlo trials for the ground truth");
  cli.add_int("seed", 2016, "Monte-Carlo master seed");
  cli.add_int("dodin-atoms", 64, "atom budget for Dodin distributions");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const int k = static_cast<int>(cli.get_int("k"));
  const auto g = gen::lu_dag(k);

  bench::CellOptions opt;
  opt.mc_trials = static_cast<std::uint64_t>(cli.get_int("trials"));
  opt.mc_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  opt.dodin_atoms = static_cast<std::size_t>(cli.get_int("dodin-atoms"));
  opt.run_second_order = true;
  opt.run_corlca = true;
  opt.run_clark_full = g.task_count() <= normal::kClarkFullMaxTasks;

  const auto cell = bench::evaluate_cell(g, cli.get_double("pfail"), opt);

  std::cout << "# Table I reproduction: LU k=" << k << " ("
            << g.task_count() << " tasks), pfail=" << cli.get_double("pfail")
            << "\n# MC ground truth: mean=" << cell.mc_mean << " +/- "
            << cell.mc_ci95 << " (95% CI), "
            << util::format_duration(cell.mc_seconds) << ", "
            << cli.get_int("trials") << " trials\n";

  util::Table table({"method", "estimate", "normalized_difference",
                     "execution_time", "paper_reported"});
  const auto row = [&](const char* name, const bench::MethodOutcome& m,
                       const char* paper) {
    table.begin_row();
    table.add(name);
    table.add_double(m.estimate);
    table.add_signed_sci(m.normalized_difference);
    table.add(util::format_duration(m.seconds));
    table.add(paper);
  };
  row("Dodin", cell.dodin, "-0.97, ~2 min");
  row("Normal (Sculli)", cell.sculli, "954e-6, ~20 min");
  row("First Order", cell.first_order, "7e-6, <1 s");
  row("SecondOrder (ext)", cell.second_order, "n/a");
  row("CorLCA (ext)", cell.corlca, "n/a");
  if (opt.run_clark_full) row("ClarkFull (ext)", cell.clark_full, "n/a");

  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << '\n';
  return 0;
}
