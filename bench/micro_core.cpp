// bench/micro_core.cpp
//
// google-benchmark micro suite: per-operation costs of the library's hot
// paths — longest path, levels, the first/second-order estimators, one MC
// trial, distribution algebra, Dodin, and the Normal family. These back
// the complexity claims in DESIGN.md (e.g. first order is O(V + E) and
// takes well under a millisecond even at k = 20).

#include <benchmark/benchmark.h>

#include "core/bottom_levels.hpp"
#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "graph/levels.hpp"
#include "graph/longest_path.hpp"
#include "graph/reachability.hpp"
#include "graph/topological.hpp"
#include "legacy_trial.hpp"
#include "mc/trial.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "prob/discrete_distribution.hpp"
#include "spgraph/dodin.hpp"

namespace {

using namespace expmk;

void BM_TopologicalOrder(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::topological_order(g));
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_TopologicalOrder)->Arg(8)->Arg(12)->Arg(20);

void BM_CriticalPath(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto topo = graph::topological_order(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::critical_path_length(g, g.weights(), topo));
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_CriticalPath)->Arg(8)->Arg(12)->Arg(20);

void BM_FirstOrder(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto topo = graph::topological_order(g);
  const auto model = core::calibrate(g, 0.0001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::first_order(g, model, topo).expected_makespan());
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_FirstOrder)->Arg(8)->Arg(12)->Arg(20);

void BM_SecondOrder(benchmark::State& state) {
  const auto g = gen::cholesky_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::second_order(g, model).expected_makespan);
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_SecondOrder)->Arg(4)->Arg(8)->Arg(12);

void BM_McTrial(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  const mc::TrialContext ctx(g, model, core::RetryModel::Geometric);
  prob::McRng rng(1);
  std::vector<double> durations(g.task_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::run_trial(ctx, rng, durations));
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_McTrial)->Arg(8)->Arg(12)->Arg(20);

// The engine's hot path: fused allocation-free CSR trial kernel.
void BM_McTrial_Csr(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  const mc::TrialContext ctx(g, model, core::RetryModel::Geometric);
  prob::McRng rng(1);
  std::vector<double> finish(g.task_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::run_trial_csr(ctx, rng, finish));
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_McTrial_Csr)->Arg(8)->Arg(12)->Arg(20);

// Pre-CSR baseline (bench/legacy_trial.hpp): per-trial allocation,
// pointer-chasing adjacency, two logs per task. Kept so the BM_McTrial_Csr
// speedup stays visible in every micro run.
void BM_McTrial_Legacy(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  const bench::LegacyTrialContext ctx(g, model, core::RetryModel::Geometric);
  prob::McRng rng(1);
  std::vector<double> durations(g.task_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::legacy_run_trial(ctx, rng, durations));
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_McTrial_Legacy)->Arg(8)->Arg(12)->Arg(20);

void BM_Sculli(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(normal::sculli(g, model).expected_makespan());
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_Sculli)->Arg(8)->Arg(12)->Arg(20);

void BM_CorLca(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(normal::corlca(g, model).expected_makespan());
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_CorLca)->Arg(8)->Arg(12)->Arg(20);

void BM_ClarkFull(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        normal::clark_full(g, model).expected_makespan());
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_ClarkFull)->Arg(6)->Arg(10);

void BM_Dodin(benchmark::State& state) {
  const auto g = gen::cholesky_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sp::dodin_two_state(g, model, {.max_atoms = 64})
            .expected_makespan());
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_Dodin)->Arg(4)->Arg(6);

void BM_FailureAwareBottomLevels(benchmark::State& state) {
  const auto g = gen::cholesky_dag(static_cast<int>(state.range(0)));
  const auto model = core::calibrate(g, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::failure_aware_bottom_levels(g, model));
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_FailureAwareBottomLevels)->Arg(6)->Arg(10);

void BM_Reachability(benchmark::State& state) {
  const auto g = gen::lu_dag(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const graph::Reachability r(g);
    benchmark::DoNotOptimize(r.descendant_count(0));
  }
  state.SetLabel(std::to_string(g.task_count()) + " tasks");
}
BENCHMARK(BM_Reachability)->Arg(8)->Arg(12);

void BM_Convolve(benchmark::State& state) {
  const auto atoms = static_cast<std::size_t>(state.range(0));
  auto d = prob::DiscreteDistribution::two_state(1.0, 0.99);
  for (int i = 0; i < 12; ++i) {
    d = prob::DiscreteDistribution::convolve(
        d, prob::DiscreteDistribution::two_state(1.0 + 0.01 * i, 0.99),
        atoms);
  }
  const auto other = prob::DiscreteDistribution::two_state(0.5, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prob::DiscreteDistribution::convolve(d, other, atoms));
  }
}
BENCHMARK(BM_Convolve)->Arg(64)->Arg(256);

void BM_MaxOf(benchmark::State& state) {
  const auto atoms = static_cast<std::size_t>(state.range(0));
  auto d = prob::DiscreteDistribution::two_state(1.0, 0.99);
  for (int i = 0; i < 12; ++i) {
    d = prob::DiscreteDistribution::convolve(
        d, prob::DiscreteDistribution::two_state(1.0 + 0.01 * i, 0.99),
        atoms);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prob::DiscreteDistribution::max_of(d, d, atoms));
  }
}
BENCHMARK(BM_MaxOf)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
