// bench/bench_plan.cpp
//
// The query planner's headline number: planned evaluation vs what a
// user runs WITHOUT a planner, at equal delivered accuracy. Each cell
// fixes an accuracy target and a "naive" method choice that honestly
// meets it — the overkill picks people actually make (200k-trial MC for
// two-digit accuracy, exact enumeration on a 20-task graph, a
// 2048-atom Dodin sweep, a maxed-out sp atom budget) — and times it
// against exp::plan() with the same target, which substitutes the
// cheapest method/knob sizing predicted AND verified to deliver it.
//
// On oracle-sized cells (<= 24 tasks) both answers are checked against
// `exact`: the bench FAILS (exit 1) if the planned result misses its
// target, so the speedup can never come from silently degraded
// accuracy. It also fails if the mean-latency win drops under 10x —
// the regression gate this PR pins (BENCH_plan.json, compared by
// bench/compare_bench.py against bench/baselines/plan_v1/).
//
//   ./bench_plan [reps]   (default: 5; the sp atom-sizing cell always
//                          runs cold, reps = 1 — see the note there)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/evaluator.hpp"
#include "exp/plan.hpp"
#include "gen/random_dags.hpp"
#include "scenario/scenario.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;

double checksum_guard = 0.0;  // keeps the loops from eliding

struct Row {
  std::string op = "plan";
  std::string size;
  std::string method;
  double target = 0.0;
  double naive_us = 0.0;
  double planned_us = 0.0;
  double speedup = 0.0;
  std::string planned_method;
  double naive_rel_err = -1.0;    // vs exact oracle; -1 = no oracle
  double planned_rel_err = -1.0;  // vs exact oracle; -1 = no oracle
};

Row run_cell(const char* label, const char* naive_method, double target,
             const exp::EvalOptions& naive_opt,
             const scenario::Scenario& sc, std::uint64_t reps,
             bool oracle) {
  const auto& reg = exp::EvaluatorRegistry::builtin();
  const exp::Evaluator* naive = reg.find(naive_method);
  Row row;
  row.size = label;
  row.method = naive_method;
  row.target = target;

  // Naive arm: the method as requested, timed end to end.
  exp::EvalResult naive_r;
  {
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      naive_r = naive->evaluate(sc, naive_opt);
      checksum_guard += naive_r.mean;
    }
    row.naive_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }

  // Planned arm: same scenario, same accuracy target, fresh planner per
  // cell (committed coefficients only — no EWMA warm-up between cells,
  // so the row is a pure function of the corpus fit).
  exp::Planner::Config cfg;
  cfg.enable_ewma = false;
  const exp::Planner planner(cfg);
  exp::PlanBudget budget;
  budget.target_rel_err = target;
  exp::PlannedResult planned;
  {
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      planned = planner.run(sc, budget, naive_opt);
      checksum_guard += planned.result.mean;
    }
    row.planned_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }
  row.planned_method = std::string(planned.report.method_name);
  row.speedup = row.planned_us > 0.0 ? row.naive_us / row.planned_us : 0.0;

  if (oracle) {
    const exp::EvalResult truth = reg.find("exact")->evaluate(sc, {});
    row.naive_rel_err = std::fabs(naive_r.mean - truth.mean) / truth.mean;
    row.planned_rel_err =
        std::fabs(planned.result.mean - truth.mean) / truth.mean;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t reps =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

  std::printf("bench_plan: planned vs naive at equal delivered accuracy, "
              "%llu reps/row\n",
              static_cast<unsigned long long>(reps));

  std::vector<Row> rows;
  {
    // Two-digit accuracy bought with a 200k-trial MC run: the planner
    // answers with a closed form at the same delivered accuracy.
    exp::EvalOptions opt;
    opt.mc_trials = 200'000;
    opt.seed = 2016;
    rows.push_back(run_cell(
        "mc200k-erdos60", "mc", 0.02, opt,
        scenario::Scenario::calibrated(gen::erdos_dag(60, 0.08, 7), 0.01),
        reps, false));
  }
  {
    // Exact enumeration on a 22-task graph for a 1e-3 target: three
    // orders of magnitude of unneeded precision, paid in 2^V time.
    rows.push_back(run_cell(
        "exact-erdos22", "exact", 1e-3, {},
        scenario::Scenario::calibrated(gen::erdos_dag(22, 0.12, 5), 0.01),
        reps, true));
  }
  {
    // A 2048-atom Dodin sweep where the method's own 5% bias floor is
    // the real accuracy limit — the atom spend is pure waste.
    exp::EvalOptions opt;
    opt.dodin_atoms = 2048;
    rows.push_back(run_cell(
        "dodin2048-erdos30", "dodin", 0.05, opt,
        scenario::Scenario::calibrated(gen::erdos_dag(30, 0.2, 5), 0.01),
        reps, false));
  }
  {
    // Atom-budget sizing, not method substitution: a maxed-out sp atom
    // cap vs the planner growing atoms only until the certified envelope
    // meets the target. Cold, single-rep on BOTH arms — the scenario
    // memoizes hierarchical sweeps, so repeat evaluations of the same
    // cell would time the cache, not the work.
    exp::EvalOptions opt;
    opt.sp_max_atoms = 4096;
    rows.push_back(run_cell(
        "sp4096-sp200", "sp", 1e-4, opt,
        scenario::Scenario::calibrated(gen::random_series_parallel(200, 9),
                                       0.01),
        1, false));
  }

  bool accuracy_ok = true;
  double naive_sum = 0.0;
  double planned_sum = 0.0;
  std::vector<bench::JsonWriter> json_rows;
  for (const Row& row : rows) {
    naive_sum += row.naive_us;
    planned_sum += row.planned_us;
    std::printf("  %-20s naive %-6s %12.1f us   planned %-8s %10.1f us   "
                "speedup %7.1fx",
                row.size.c_str(), row.method.c_str(), row.naive_us,
                row.planned_method.c_str(), row.planned_us, row.speedup);
    if (row.planned_rel_err >= 0.0) {
      std::printf("   rel-err naive %.2e planned %.2e (target %.0e)",
                  row.naive_rel_err, row.planned_rel_err, row.target);
      if (row.planned_rel_err > row.target) {
        accuracy_ok = false;
        std::printf("  << TARGET MISSED");
      }
    }
    std::printf("\n");

    bench::JsonWriter w;
    w.field("op", row.op)
        .field("size", row.size)
        .field("method", row.method)
        .field("target", row.target)
        .field("naive_us", row.naive_us)
        .field("planned_us", row.planned_us)
        .field("speedup", row.speedup)
        .field("planned_method", row.planned_method)
        // Sub-100us rows on shared CI machines need a wide timing gate;
        // the 10x mean-speedup check above is the real acceptance bar.
        // Raw per-arm timings get an extra-wide override (a low-rep smoke
        // on a loaded runner can easily triple a 30us measurement); the
        // same-run speedup ratio cancels machine load, so it keeps the
        // tighter row gate.
        .field("tol", 1.0)
        .field("naive_us_tol", 4.0)
        .field("planned_us_tol", 4.0);
    if (row.planned_rel_err >= 0.0) {
      w.field("naive_rel_err", row.naive_rel_err)
          .field("planned_rel_err", row.planned_rel_err);
    }
    json_rows.push_back(std::move(w));
  }

  const double mean_speedup =
      planned_sum > 0.0 ? naive_sum / planned_sum : 0.0;
  std::printf("mean latency: naive %.1f us, planned %.1f us -> %.1fx\n",
              naive_sum / static_cast<double>(rows.size()),
              planned_sum / static_cast<double>(rows.size()), mean_speedup);

  bench::JsonWriter top;
  top.field("bench", "plan")
      .field("reps", reps)
      .field("mean_naive_us", naive_sum / static_cast<double>(rows.size()))
      .field("mean_planned_us",
             planned_sum / static_cast<double>(rows.size()))
      .field("mean_speedup", mean_speedup);
  top.array("rows", json_rows);
  std::ofstream out("BENCH_plan.json");
  out << top.str() << "\n";
  std::printf("wrote BENCH_plan.json (checksum %.3f)\n", checksum_guard);

  if (!accuracy_ok) {
    std::fprintf(stderr, "bench_plan: FAIL — a planned result missed its "
                         "accuracy target (see rows above)\n");
    return 1;
  }
  if (mean_speedup < 10.0) {
    std::fprintf(stderr, "bench_plan: FAIL — mean speedup %.1fx is under "
                         "the 10x gate\n",
                 mean_speedup);
    return 1;
  }
  return 0;
}
