// bench/bench_scale.cpp
//
// Million-task scale pins for the hierarchical-evaluation PR. Four
// measurements on the repetitive tiled fork-join kernel
// (gen::tiled_fork_join — the bulk-construction generator):
//
//   scale           build + compile + fo + sp.hier wall time AND resident
//                   set at 10^4 / 10^5 / 10^6 tasks. The RSS column is the
//                   acceptance pin: hierarchical evaluation must hold a
//                   million-task scenario without memory blow-up.
//   level_parallel  fo / so serial (threads=1) vs 8 workers at the 10^5
//                   row — the level-parallel sweep speedup.
//   memo            cold vs warm build_module_distributions on a DAG of
//                   structurally identical modules — the memoization win.
//   patch           one-task Scenario::patch vs a fresh compile at 10^5
//                   tasks — the incremental-scenario win.
//
// Emits BENCH_scale.json; bench/baselines/scale_v1/ holds the gate
// compare_bench.py reads in CI (rss_bytes is compared like a timing
// metric — a silent memory regression fails the lane like a slowdown).
//
//   ./bench_scale [--quick]     (--quick stops at 10^5 tasks, for CI)

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/evaluator.hpp"
#include "exp/hier.hpp"
#include "gen/random_dags.hpp"
#include "scenario/scenario.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;

double checksum_guard = 0.0;

/// Current resident set in bytes (/proc/self/statm; Linux). Falls back to
/// the ru_maxrss high-water mark when statm is unavailable.
std::size_t rss_bytes_now() {
  if (std::FILE* f = std::fopen("/proc/self/statm", "r")) {
    unsigned long size_pages = 0, resident_pages = 0;
    const int got = std::fscanf(f, "%lu %lu", &size_pages, &resident_pages);
    std::fclose(f);
    if (got == 2) {
      return static_cast<std::size_t>(resident_pages) * 4096u;
    }
  }
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024u;  // KiB on Linux
}

/// tiled_fork_join shape with ~`target` tasks: chains of 10, stage width
/// 32 -> 322 tasks per stage.
graph::Dag scale_dag(std::size_t target) {
  const int width = 32, chain_len = 10;
  const int per_stage = width * chain_len + 2;
  const int stages =
      std::max(1, static_cast<int>(target / static_cast<std::size_t>(per_stage)));
  // lo == hi: identical chains, so the module memo carries the build.
  return gen::tiled_fork_join(stages, width, chain_len, 7,
                              {.lo = 2.0, .hi = 2.0});
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  std::vector<std::size_t> sizes = {10'000, 100'000};
  if (!quick) sizes.push_back(1'000'000);

  const auto& reg = exp::EvaluatorRegistry::builtin();
  std::vector<bench::JsonWriter> rows;

  // ---- scale: build/compile/eval time + RSS per size ------------------
  std::printf("bench_scale%s: tiled fork-join kernel\n",
              quick ? " (--quick)" : "");
  for (const std::size_t n : sizes) {
    exp::hier::memo_clear();
    const util::Timer build_t;
    const auto g = scale_dag(n);
    const double build_us = build_t.seconds() * 1e6;

    const util::Timer compile_t;
    const auto sc = scenario::Scenario::calibrated(
        g, 0.01, core::RetryModel::TwoState);
    const double compile_us = compile_t.seconds() * 1e6;

    exp::EvalOptions opt;
    const util::Timer fo_t;
    const auto fo = reg.find("fo")->evaluate(sc, opt);
    const double fo_us = fo_t.seconds() * 1e6;
    checksum_guard += fo.mean;

    opt.sp_max_atoms = 128;
    const util::Timer hier_t;
    const auto hier = reg.find("sp.hier")->evaluate(sc, opt);
    const double hier_us = hier_t.seconds() * 1e6;
    checksum_guard += hier.supported ? hier.mean : 0.0;

    const std::size_t rss = rss_bytes_now();
    std::printf("  n=%8zu  build %9.0f us  compile %9.0f us  fo %9.0f us"
                "  sp.hier %9.0f us (%s)  rss %6.1f MiB\n",
                g.task_count(), build_us, compile_us, fo_us, hier_us,
                hier.supported ? "ok" : hier.note.c_str(),
                static_cast<double>(rss) / (1024.0 * 1024.0));

    bench::JsonWriter w;
    w.field("op", "scale")
        .field("tasks", g.task_count())
        .field("edges", g.edge_count())
        .field("build_us", build_us)
        .field("compile_us", compile_us)
        .field("fo_us", fo_us)
        .field("sp_hier_us", hier_us)
        .field("sp_hier_supported", hier.supported)
        .field("rss_bytes", rss)
        // RSS and cold-ramp timings wobble across allocators/runners;
        // the gate cares about order-of-magnitude blow-ups.
        .field("tol", 0.6);
    rows.push_back(std::move(w));
  }

  // ---- level_parallel: fo/so serial vs 8 workers ----------------------
  // fo is linear, so the 10^5 row is cheap; so's pair sweep is O(V^2), so
  // its row runs at 2*10^4 — far above the 4096-task activation
  // threshold, small enough for a CI lane.
  {
    const struct { const char* method; std::size_t tasks; } lp_rows[] = {
        {"fo", 100'000}, {"so", 20'000}};
    for (const auto& [method, tasks] : lp_rows) {
      const auto g = scale_dag(tasks);
      const auto sc = scenario::Scenario::calibrated(
          g, 0.01, core::RetryModel::TwoState);
      const exp::Evaluator* e = reg.find(method);
      exp::EvalOptions serial;
      serial.threads = 1;
      checksum_guard += e->evaluate(sc, serial).mean;  // warm caches
      const util::Timer st;
      checksum_guard += e->evaluate(sc, serial).mean;
      const double serial_us = st.seconds() * 1e6;

      exp::EvalOptions par;
      par.threads = 8;
      par.level_parallel_min_tasks = 0;
      checksum_guard += e->evaluate(sc, par).mean;  // warm pool
      const util::Timer pt;
      checksum_guard += e->evaluate(sc, par).mean;
      const double parallel_us = pt.seconds() * 1e6;

      const double speedup =
          parallel_us > 0.0 ? serial_us / parallel_us : 0.0;
      std::printf("  level-parallel %-3s n=%zu  serial %9.0f us  "
                  "8-workers %9.0f us  speedup %.2fx\n",
                  method, g.task_count(), serial_us, parallel_us, speedup);
      bench::JsonWriter w;
      w.field("op", "level_parallel")
          .field("method", method)
          .field("tasks", g.task_count())
          .field("serial_us", serial_us)
          .field("parallel_us", parallel_us)
          .field("speedup", speedup)
          .field("tol", 0.6);
      rows.push_back(std::move(w));
    }
  }

  // ---- memo: cold vs warm module build --------------------------------
  {
    const auto g = scale_dag(10'000);
    const auto sc = scenario::Scenario::calibrated(
        g, 0.01, core::RetryModel::TwoState);
    exp::hier::memo_clear();
    const util::Timer cold_t;
    const auto cold = exp::hier::build_module_distributions(sc, 128);
    const double cold_us = cold_t.seconds() * 1e6;
    const util::Timer warm_t;
    const auto warm = exp::hier::build_module_distributions(sc, 128);
    const double warm_us = warm_t.seconds() * 1e6;
    checksum_guard += cold.by_quotient_node.size() +
                      static_cast<double>(warm.stats.memo_hits);
    const double speedup = warm_us > 0.0 ? cold_us / warm_us : 0.0;
    std::printf("  memo n=%zu  cold %9.0f us (%llu hits/%llu misses)  "
                "warm %9.0f us  speedup %.1fx\n",
                sc.task_count(), cold_us,
                static_cast<unsigned long long>(cold.stats.memo_hits),
                static_cast<unsigned long long>(cold.stats.memo_misses),
                warm_us, speedup);
    bench::JsonWriter w;
    w.field("op", "memo")
        .field("tasks", sc.task_count())
        .field("cold_us", cold_us)
        .field("warm_us", warm_us)
        .field("cold_hits", cold.stats.memo_hits)
        .field("cold_misses", cold.stats.memo_misses)
        .field("speedup", speedup)
        .field("tol", 0.6);
    rows.push_back(std::move(w));
  }

  // ---- patch: one-task incremental patch vs fresh compile -------------
  {
    const auto g = scale_dag(100'000);
    const auto sc = scenario::Scenario::calibrated(
        g, 0.01, core::RetryModel::TwoState);
    const std::vector<graph::TaskId> ids = {
        static_cast<graph::TaskId>(sc.task_count() / 2)};
    const std::vector<double> nr = {2e-3};
    std::vector<double> merged(sc.rates().begin(), sc.rates().end());
    merged[ids[0]] = nr[0];

    // Best-of-5 with a warm-up rep on both arms: the patch clone is pure
    // memcpy, so first-touch page faults on its fresh allocations would
    // otherwise dominate its one-digit-millisecond cost.
    constexpr int kReps = 5;
    double patch_us = 0.0, fresh_us = 0.0;
    for (int rep = -1; rep < kReps; ++rep) {
      const util::Timer patch_t;
      const auto patched = sc.patch(ids, nr);
      const double us = patch_t.seconds() * 1e6;
      if (rep >= 0) patch_us = rep == 0 ? us : std::min(patch_us, us);
      checksum_guard += patched.critical_path();
    }
    for (int rep = -1; rep < kReps; ++rep) {
      const util::Timer fresh_t;
      const auto fresh = scenario::Scenario::compile(
          g, scenario::FailureSpec::per_task(merged),
          core::RetryModel::TwoState);
      const double us = fresh_t.seconds() * 1e6;
      if (rep >= 0) fresh_us = rep == 0 ? us : std::min(fresh_us, us);
      checksum_guard += fresh.critical_path();
    }

    const double speedup = patch_us > 0.0 ? fresh_us / patch_us : 0.0;
    std::printf("  patch n=%zu  patch %9.0f us  fresh compile %9.0f us  "
                "speedup %.1fx\n",
                sc.task_count(), patch_us, fresh_us, speedup);
    bench::JsonWriter w;
    w.field("op", "patch")
        .field("tasks", sc.task_count())
        .field("patch_us", patch_us)
        .field("fresh_compile_us", fresh_us)
        .field("speedup", speedup)
        .field("tol", 0.6);
    rows.push_back(std::move(w));
  }

  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  bench::JsonWriter out;
  out.field("bench", "scale")
      .field("dag", "tiled_fork_join")
      .field("quick", quick)
      .field("peak_rss_bytes", static_cast<std::size_t>(ru.ru_maxrss) * 1024u)
      .array("rows", rows);
  out.write_file("BENCH_scale.json");
  std::printf("  wrote BENCH_scale.json (checksum %g)\n", checksum_guard);
  return 0;
}
