// bench/bench_common.hpp
//
// Shared plumbing for the figure/table reproduction binaries: run the
// three estimators of the paper (First Order, Dodin, Normal/Sculli) plus
// our extensions against the Monte-Carlo ground truth on one DAG, timing
// each, and emit rows in the format the paper reports (signed normalized
// difference with Monte Carlo).

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "graph/dag.hpp"
#include "mc/engine.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "spgraph/dodin.hpp"
#include "util/timer.hpp"

namespace expmk::bench {

/// Minimal machine-readable JSON emitter for bench artifacts (e.g.
/// BENCH_mc.json): flat or one-level-nested objects of numbers, strings
/// and booleans — enough for perf-trajectory tracking across PRs without
/// dragging in a JSON dependency. Doubles are printed with 17 significant
/// digits so bit-level comparisons survive the round trip.
class JsonWriter {
 public:
  JsonWriter& field(const std::string& key, double value) {
    // JSON has no inf/nan literals; map them to null so the file stays
    // machine-readable even if a timing degenerates.
    if (!std::isfinite(value)) return raw(key, "null");
    std::ostringstream os;
    os.precision(17);
    os << value;
    return raw(key, os.str());
  }
  /// Any integer type (int, std::size_t, std::uint64_t, ...) — a template
  /// so size_t stays unambiguous on platforms where it isn't uint64_t.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& field(const std::string& key, T value) {
    return raw(key, std::to_string(value));
  }
  JsonWriter& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonWriter& field(const std::string& key, const std::string& value) {
    return raw(key, quote(value));
  }
  /// Without this overload a string literal would take the pointer-to-bool
  /// conversion and silently emit `true`.
  JsonWriter& field(const std::string& key, const char* value) {
    return raw(key, quote(value));
  }
  /// Nests a completed object under `key`.
  JsonWriter& object(const std::string& key, const JsonWriter& nested) {
    return raw(key, nested.str());
  }

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i != 0) out += ", ";
      out += entries_[i];
    }
    out += "}";
    return out;
  }

  /// Writes the object to `path` (overwriting), newline-terminated.
  void write_file(const std::string& path) const {
    std::ofstream f(path);
    f << str() << "\n";
  }

 private:
  static std::string quote(const std::string& value) {
    std::string out = "\"";
    for (const char c : value) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        // Control characters are not legal raw in JSON strings.
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }
  JsonWriter& raw(const std::string& key, const std::string& rendered) {
    entries_.push_back(quote(key) + ": " + rendered);
    return *this;
  }
  std::vector<std::string> entries_;
};

/// One estimator's outcome on one (DAG, pfail) cell.
struct MethodOutcome {
  double estimate = 0.0;
  double seconds = 0.0;
  /// (estimate - mc_mean) / mc_mean; the paper's "normalized difference
  /// with Monte-Carlo". Negative = underestimation.
  double normalized_difference = 0.0;
};

/// All estimators on one cell.
struct CellResult {
  double pfail = 0.0;
  double lambda = 0.0;
  double mc_mean = 0.0;
  double mc_ci95 = 0.0;
  double mc_seconds = 0.0;
  double critical_path = 0.0;
  MethodOutcome first_order;
  MethodOutcome dodin;
  MethodOutcome sculli;   ///< the paper's "Normal"
  MethodOutcome second_order;
  MethodOutcome corlca;
  MethodOutcome clark_full;
};

/// Which optional estimators to run (the paper's three always run).
struct CellOptions {
  std::uint64_t mc_trials = 300'000;  ///< the paper's trial count
  std::uint64_t mc_seed = 2016;
  std::size_t dodin_atoms = 256;
  bool run_second_order = false;
  bool run_corlca = false;
  bool run_clark_full = false;
  /// Monte-Carlo retry model; Geometric reproduces the paper's simulator
  /// (time-to-failure resampled per attempt).
  core::RetryModel mc_retry = core::RetryModel::Geometric;
  /// Use the control-variate estimator for a tighter ground truth at the
  /// same trial count (off by default: the paper uses the plain mean).
  bool mc_control_variate = false;
};

inline CellResult evaluate_cell(const graph::Dag& g, double pfail,
                                const CellOptions& opt) {
  CellResult cell;
  cell.pfail = pfail;
  const core::FailureModel model = core::calibrate(g, pfail);
  cell.lambda = model.lambda;

  mc::McConfig mc_cfg;
  mc_cfg.trials = opt.mc_trials;
  mc_cfg.seed = opt.mc_seed;
  mc_cfg.retry = opt.mc_retry;
  mc_cfg.control_variate = opt.mc_control_variate;
  const auto mc = mc::run_monte_carlo(g, model, mc_cfg);
  cell.mc_mean = mc.mean;
  cell.mc_ci95 = mc.ci95_half_width;
  cell.mc_seconds = mc.seconds;

  const auto diff = [&](double est) { return (est - mc.mean) / mc.mean; };
  {
    const util::Timer t;
    const auto r = core::first_order(g, model);
    cell.first_order.seconds = t.seconds();
    cell.first_order.estimate = r.expected_makespan();
    cell.critical_path = r.critical_path;
  }
  {
    const util::Timer t;
    const auto r = sp::dodin_two_state(g, model, {.max_atoms = opt.dodin_atoms});
    cell.dodin.seconds = t.seconds();
    cell.dodin.estimate = r.expected_makespan();
  }
  {
    const util::Timer t;
    const auto r = normal::sculli(g, model);
    cell.sculli.seconds = t.seconds();
    cell.sculli.estimate = r.expected_makespan();
  }
  if (opt.run_second_order) {
    const util::Timer t;
    const auto r = core::second_order(g, model, core::RetryModel::Geometric);
    cell.second_order.seconds = t.seconds();
    cell.second_order.estimate = r.expected_makespan;
  }
  if (opt.run_corlca) {
    const util::Timer t;
    const auto r = normal::corlca(g, model);
    cell.corlca.seconds = t.seconds();
    cell.corlca.estimate = r.expected_makespan();
  }
  if (opt.run_clark_full) {
    const util::Timer t;
    const auto r = normal::clark_full(g, model);
    cell.clark_full.seconds = t.seconds();
    cell.clark_full.estimate = r.expected_makespan();
  }

  for (MethodOutcome* m :
       {&cell.first_order, &cell.dodin, &cell.sculli, &cell.second_order,
        &cell.corlca, &cell.clark_full}) {
    if (m->seconds > 0.0 || m->estimate != 0.0) {
      m->normalized_difference = diff(m->estimate);
    }
  }
  return cell;
}

}  // namespace expmk::bench
