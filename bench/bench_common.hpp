// bench/bench_common.hpp
//
// Shared plumbing for the figure/table reproduction binaries: run the
// three estimators of the paper (First Order, Dodin, Normal/Sculli) plus
// our extensions against the Monte-Carlo ground truth on one DAG, timing
// each, and emit rows in the format the paper reports (signed normalized
// difference with Monte Carlo).

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/failure_model.hpp"
#include "core/first_order.hpp"
#include "core/second_order.hpp"
#include "graph/dag.hpp"
#include "mc/engine.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "spgraph/dodin.hpp"
#include "util/json_writer.hpp"
#include "util/timer.hpp"

namespace expmk::bench {

/// The JSON emitter moved into the library (util/json_writer.hpp) when the
/// sweep subsystem started emitting artifacts; the bench binaries keep
/// using it under the historical name.
using JsonWriter = util::JsonWriter;

/// One estimator's outcome on one (DAG, pfail) cell.
struct MethodOutcome {
  double estimate = 0.0;
  double seconds = 0.0;
  /// (estimate - mc_mean) / mc_mean; the paper's "normalized difference
  /// with Monte-Carlo". Negative = underestimation.
  double normalized_difference = 0.0;
};

/// All estimators on one cell.
struct CellResult {
  double pfail = 0.0;
  double lambda = 0.0;
  double mc_mean = 0.0;
  double mc_ci95 = 0.0;
  double mc_seconds = 0.0;
  double critical_path = 0.0;
  MethodOutcome first_order;
  MethodOutcome dodin;
  MethodOutcome sculli;   ///< the paper's "Normal"
  MethodOutcome second_order;
  MethodOutcome corlca;
  MethodOutcome clark_full;
};

/// Which optional estimators to run (the paper's three always run).
struct CellOptions {
  std::uint64_t mc_trials = 300'000;  ///< the paper's trial count
  std::uint64_t mc_seed = 2016;
  std::size_t dodin_atoms = 256;
  bool run_second_order = false;
  bool run_corlca = false;
  bool run_clark_full = false;
  /// Monte-Carlo retry model; Geometric reproduces the paper's simulator
  /// (time-to-failure resampled per attempt).
  core::RetryModel mc_retry = core::RetryModel::Geometric;
  /// Use the control-variate estimator for a tighter ground truth at the
  /// same trial count (off by default: the paper uses the plain mean).
  bool mc_control_variate = false;
};

inline CellResult evaluate_cell(const graph::Dag& g, double pfail,
                                const CellOptions& opt) {
  CellResult cell;
  cell.pfail = pfail;
  const core::FailureModel model = core::calibrate(g, pfail);
  cell.lambda = model.lambda;

  mc::McConfig mc_cfg;
  mc_cfg.trials = opt.mc_trials;
  mc_cfg.seed = opt.mc_seed;
  mc_cfg.retry = opt.mc_retry;
  mc_cfg.control_variate = opt.mc_control_variate;
  const auto mc = mc::run_monte_carlo(g, model, mc_cfg);
  cell.mc_mean = mc.mean;
  cell.mc_ci95 = mc.ci95_half_width;
  cell.mc_seconds = mc.seconds;

  const auto diff = [&](double est) { return (est - mc.mean) / mc.mean; };
  {
    const util::Timer t;
    const auto r = core::first_order(g, model);
    cell.first_order.seconds = t.seconds();
    cell.first_order.estimate = r.expected_makespan();
    cell.critical_path = r.critical_path;
  }
  {
    const util::Timer t;
    const auto r = sp::dodin_two_state(g, model, {.max_atoms = opt.dodin_atoms});
    cell.dodin.seconds = t.seconds();
    cell.dodin.estimate = r.expected_makespan();
  }
  {
    const util::Timer t;
    const auto r = normal::sculli(g, model);
    cell.sculli.seconds = t.seconds();
    cell.sculli.estimate = r.expected_makespan();
  }
  if (opt.run_second_order) {
    const util::Timer t;
    const auto r = core::second_order(g, model, core::RetryModel::Geometric);
    cell.second_order.seconds = t.seconds();
    cell.second_order.estimate = r.expected_makespan;
  }
  if (opt.run_corlca) {
    const util::Timer t;
    const auto r = normal::corlca(g, model);
    cell.corlca.seconds = t.seconds();
    cell.corlca.estimate = r.expected_makespan();
  }
  if (opt.run_clark_full) {
    const util::Timer t;
    const auto r = normal::clark_full(g, model);
    cell.clark_full.seconds = t.seconds();
    cell.clark_full.estimate = r.expected_makespan();
  }

  for (MethodOutcome* m :
       {&cell.first_order, &cell.dodin, &cell.sculli, &cell.second_order,
        &cell.corlca, &cell.clark_full}) {
    if (m->seconds > 0.0 || m->estimate != 0.0) {
      m->normalized_difference = diff(m->estimate);
    }
  }
  return cell;
}

}  // namespace expmk::bench
