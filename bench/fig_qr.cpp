// bench/fig_qr.cpp
//
// Reproduces Figures 10, 11, 12 of the paper: relative error of First
// Order, Dodin and Normal on tiled QR DAGs, k in {4,6,8,10,12}, pfail in
// {1e-2, 1e-3, 1e-4}.

#include "fig_sweep.hpp"
#include "gen/qr.hpp"

int main(int argc, char** argv) {
  return expmk::bench::run_fig_sweep(argc, argv, "qr", /*first_figure=*/10,
                                     [](int k) { return expmk::gen::qr_dag(k); });
}
