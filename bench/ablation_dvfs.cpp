// bench/ablation_dvfs.cpp
//
// The DVFS trade-off experiment motivated by the paper's Section II-B:
// lowering the frequency saves energy (~s^2 per unit work) but raises the
// silent-error rate exponentially (equation (1)), so the expected makespan
// can *increase* faster than the pure slowdown. Sweeps the speed range and
// reports expected makespan (first order), the pure time-dilation
// baseline, and relative energy — exposing the resilience-aware sweet
// spot.

#include <iostream>

#include "core/dvfs.hpp"
#include "gen/cholesky.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("ablation_dvfs",
                "Energy vs expected-makespan trade-off under equation (1)");
  cli.add_int("k", 8, "Cholesky tile count");
  cli.add_double("lambda0", 0.005, "error rate at full speed");
  cli.add_double("sensitivity", 3.0, "equation (1) exponent d");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const auto g = gen::cholesky_dag(static_cast<int>(cli.get_int("k")));
  core::DvfsModel model;
  model.lambda0 = cli.get_double("lambda0");
  model.sensitivity = cli.get_double("sensitivity");

  std::vector<double> speeds;
  const int steps = 10;
  for (int i = 0; i <= steps; ++i) {
    speeds.push_back(model.smin +
                     (model.smax - model.smin) * i / static_cast<double>(steps));
  }
  const auto sweep = core::dvfs_sweep(g, model, speeds);
  const double best = core::best_speed_for_makespan(g, model, speeds);

  util::Table table({"speed", "lambda", "d(G)/s", "E[makespan]",
                     "error_overhead", "relative_energy"});
  for (const auto& p : sweep) {
    table.begin_row();
    table.add_double(p.speed);
    table.add_double(p.lambda);
    table.add_double(p.failure_free_makespan);
    table.add_double(p.expected_makespan);
    table.add_signed_sci(p.expected_makespan / p.failure_free_makespan -
                         1.0);
    table.add_double(p.relative_energy);
  }

  std::cout << "# DVFS ablation on Cholesky k=" << cli.get_int("k")
            << ": lambda0=" << model.lambda0 << ", d=" << model.sensitivity
            << "\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << "# makespan-optimal speed: " << best << "\n\n";
  return 0;
}
