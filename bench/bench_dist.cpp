// bench/bench_dist.cpp
//
// Flat-distribution-engine microbenchmark: the cost of the distribution
// arithmetic through the two paths the library now has,
//
//   (a) legacy — DiscreteDistribution object operations (one heap-backed
//       vector per result, the pre-refactor cost structure, still the
//       executable specification for the flat kernels);
//   (b) flat   — prob::dist_kernels span kernels on warm
//       exp::Workspace-leased arenas (zero steady-state allocations).
//
// Two tiers of rows:
//   * convolve / max-of microbenches over atom-count pairs;
//   * end-to-end sp and dodin evaluations (object ArcNetwork reduction vs
//     the flat engine behind the registry) over generator DAGs.
//
// Emits BENCH_dist.json (speedup = legacy_us / flat_us) so the win is
// tracked from this PR onward; CI runs a reduced-rep smoke and uploads
// the artifact.
//
//   ./bench_dist [reps]   (default: 2000)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/failure_model.hpp"
#include "exp/workspace.hpp"
#include "gen/lu.hpp"
#include "gen/random_dags.hpp"
#include "prob/dist_kernels.hpp"
#include "prob/rng.hpp"
#include "scenario/scenario.hpp"
#include "spgraph/arc_network.hpp"
#include "spgraph/dodin.hpp"
#include "spgraph/sp_reduce.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;
namespace dk = prob::dist_kernels;

double checksum_guard = 0.0;  // keeps the loops from eliding

struct Row {
  std::string op;
  std::string size;  // "64x64" atoms or "tasks=60"
  double legacy_us = 0.0;
  double flat_us = 0.0;
  double speedup = 0.0;
  // Structured features on the end-to-end sp/dodin rows (zero elsewhere):
  // bench/fit_cost_model.py fits the planner's per-method cost
  // coefficients from these.
  std::size_t tasks = 0;
  std::size_t edges = 0;
  std::size_t atoms = 0;
};

prob::DiscreteDistribution random_dist(std::size_t atoms,
                                       std::uint64_t seed) {
  prob::Xoshiro256pp rng(seed, 17);
  std::vector<prob::Atom> raw(atoms);
  double v = 0.0;
  for (auto& at : raw) {
    v += 0.1 + rng.uniform();
    at = {v, 0.05 + rng.uniform()};
  }
  return prob::DiscreteDistribution::from_atoms(std::move(raw));
}

Row bench_kernel_op(const char* op, std::size_t nx, std::size_t ny,
                    std::uint64_t reps) {
  const auto x = random_dist(nx, 11);
  const auto y = random_dist(ny, 23);
  const bool is_convolve = std::string(op) == "convolve";
  Row row;
  row.op = op;
  row.size = std::to_string(nx) + "x" + std::to_string(ny);

  {
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      const auto z = is_convolve
                         ? prob::DiscreteDistribution::convolve(x, y)
                         : prob::DiscreteDistribution::max_of(x, y);
      checksum_guard += z.mean();
    }
    row.legacy_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }
  {
    exp::Workspace ws;
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      const exp::Workspace::Frame frame(ws);
      const auto out = ws.atoms(is_convolve ? nx * ny : nx + ny);
      std::size_t m;
      if (is_convolve) {
        m = dk::convolve(x.atoms(), y.atoms(), out);
      } else {
        const auto support = ws.doubles(nx + ny);
        m = dk::max_of(x.atoms(), y.atoms(), out, support);
      }
      checksum_guard += dk::mean(out.subspan(0, m));
    }
    row.flat_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }
  row.speedup = row.flat_us > 0.0 ? row.legacy_us / row.flat_us : 0.0;
  return row;
}

Row bench_sp(const char* label, const graph::Dag& g, std::uint64_t reps) {
  const auto sc = scenario::Scenario::calibrated(g, 0.01);
  const std::size_t max_atoms = 64;
  Row row;
  row.op = "sp";
  row.size = std::string(label) + " tasks=" + std::to_string(g.task_count());
  row.tasks = g.task_count();
  row.edges = g.edge_count();
  row.atoms = max_atoms;
  {
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      std::vector<prob::DiscreteDistribution> dists;
      dists.reserve(g.task_count());
      for (graph::TaskId i = 0; i < g.task_count(); ++i) {
        const double a = g.weight(i);
        // Zero-weight (virtual) tasks cannot fail, as in the evaluators.
        dists.push_back(a <= 0.0 ? prob::DiscreteDistribution::point(0.0)
                                 : prob::DiscreteDistribution::two_state(
                                       a, sc.p_success()[i]));
      }
      const auto eval = sp::evaluate_sp(
          sp::ArcNetwork::from_dag(g, std::move(dists)), max_atoms);
      checksum_guard += eval.makespan.mean();
    }
    row.legacy_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }
  {
    exp::Workspace ws;
    (void)sp::evaluate_sp_flat(sc, max_atoms, ws);  // warm the arenas
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      checksum_guard += sp::evaluate_sp_flat(sc, max_atoms, ws).mean;
    }
    row.flat_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }
  row.speedup = row.flat_us > 0.0 ? row.legacy_us / row.flat_us : 0.0;
  return row;
}

Row bench_dodin(const char* label, const graph::Dag& g, std::uint64_t reps) {
  const auto sc = scenario::Scenario::calibrated(g, 0.01);
  const sp::DodinOptions opts{.max_atoms = 128};
  Row row;
  row.op = "dodin";
  row.size = std::string(label) + " tasks=" + std::to_string(g.task_count());
  row.tasks = g.task_count();
  row.edges = g.edge_count();
  row.atoms = opts.max_atoms;
  {
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      checksum_guard +=
          sp::dodin_two_state(g, sc.uniform_model(), opts).expected_makespan();
    }
    row.legacy_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }
  {
    exp::Workspace ws;
    (void)sp::dodin_two_state_flat(sc, opts, ws);  // warm the arenas
    const util::Timer t;
    for (std::uint64_t r = 0; r < reps; ++r) {
      checksum_guard += sp::dodin_two_state_flat(sc, opts, ws).mean;
    }
    row.flat_us = t.seconds() * 1e6 / static_cast<double>(reps);
  }
  row.speedup = row.flat_us > 0.0 ? row.legacy_us / row.flat_us : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t reps =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  std::printf("bench_dist: legacy DiscreteDistribution vs flat kernels, "
              "%llu reps/row\n",
              static_cast<unsigned long long>(reps));

  std::vector<Row> rows;
  // Convolve over a 16..1024 atom grid: small sizes show the dispatch
  // overhead floor, large sizes the scalar/SIMD crossover.
  rows.push_back(bench_kernel_op("convolve", 16, 16, reps));
  rows.push_back(bench_kernel_op("convolve", 64, 64, reps / 4 + 1));
  rows.push_back(bench_kernel_op("convolve", 256, 256, reps / 64 + 1));
  rows.push_back(bench_kernel_op("convolve", 1024, 1024, reps / 1000 + 1));
  rows.push_back(bench_kernel_op("max_of", 64, 64, reps));
  rows.push_back(bench_kernel_op("max_of", 256, 256, reps / 4 + 1));
  rows.push_back(
      bench_sp("sp60", gen::random_series_parallel(60, 7), reps / 10 + 1));
  rows.push_back(
      bench_sp("sp200", gen::random_series_parallel(200, 9), reps / 40 + 1));
  rows.push_back(bench_dodin("lu4", gen::lu_dag(4), reps / 40 + 1));
  rows.push_back(
      bench_dodin("erdos30", gen::erdos_dag(30, 0.2, 5), reps / 40 + 1));

  std::vector<bench::JsonWriter> json_rows;
  for (const Row& row : rows) {
    std::printf("  %-10s %-18s legacy %9.2f us   flat %9.2f us   "
                "speedup %5.2fx\n",
                row.op.c_str(), row.size.c_str(), row.legacy_us, row.flat_us,
                row.speedup);
    bench::JsonWriter w;
    w.field("op", row.op)
        .field("size", row.size)
        .field("legacy_us", row.legacy_us)
        .field("flat_us", row.flat_us)
        .field("speedup", row.speedup);
    if (row.tasks > 0) {
      w.field("tasks", row.tasks)
          .field("edges", row.edges)
          .field("atoms", row.atoms);
    }
    json_rows.push_back(std::move(w));
  }
  bench::JsonWriter top;
  top.field("bench", "dist_kernels")
      .field("reps", reps)
      .field("backend", util::simd::name(util::simd::active()));
  top.array("rows", json_rows);
  std::ofstream out("BENCH_dist.json");
  out << top.str() << "\n";
  std::printf("wrote BENCH_dist.json (checksum %.3f)\n", checksum_guard);
  return 0;
}
