// bench/ablation_normal_variants.cpp
//
// Normal-family ablation: the paper's "Normal" is Sculli's method
// (independence assumed in every Clark fold). How much of its error is
// the ignored correlation? Compare Sculli, CorLCA (correlation through
// the dominant-ancestor tree) and full Clark covariance propagation on
// all three DAG classes.

#include <iostream>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "gen/lu.hpp"
#include "gen/qr.hpp"
#include "mc/engine.hpp"
#include "normal/clark_full.hpp"
#include "normal/corlca.hpp"
#include "normal/sculli.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("ablation_normal_variants",
                "Sculli vs CorLCA vs full Clark covariance");
  cli.add_int("k", 8, "tile count");
  cli.add_double("pfail", 0.01, "per-average-task failure probability");
  cli.add_int("trials", 300'000, "Monte-Carlo trials");
  cli.add_int("seed", 7, "Monte-Carlo master seed");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const int k = static_cast<int>(cli.get_int("k"));
  struct Class {
    const char* name;
    graph::Dag dag;
  };
  std::vector<Class> classes;
  classes.push_back({"cholesky", gen::cholesky_dag(k)});
  classes.push_back({"lu", gen::lu_dag(k)});
  classes.push_back({"qr", gen::qr_dag(k)});

  util::Table table({"class", "mc_mean", "Sculli_diff", "CorLCA_diff",
                     "ClarkFull_diff", "t_Sculli", "t_CorLCA",
                     "t_ClarkFull"});
  for (const auto& c : classes) {
    const auto model = core::calibrate(c.dag, cli.get_double("pfail"));
    mc::McConfig cfg;
    cfg.trials = static_cast<std::uint64_t>(cli.get_int("trials"));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto mc = mc::run_monte_carlo(c.dag, model, cfg);

    const util::Timer ts;
    const double s = normal::sculli(c.dag, model).expected_makespan();
    const double t_s = ts.seconds();
    const util::Timer tc;
    const double co = normal::corlca(c.dag, model).expected_makespan();
    const double t_c = tc.seconds();
    const util::Timer tf;
    const double f = normal::clark_full(c.dag, model).expected_makespan();
    const double t_f = tf.seconds();

    table.begin_row();
    table.add(c.name);
    table.add_double(mc.mean);
    table.add_signed_sci((s - mc.mean) / mc.mean);
    table.add_signed_sci((co - mc.mean) / mc.mean);
    table.add_signed_sci((f - mc.mean) / mc.mean);
    table.add(util::format_duration(t_s));
    table.add(util::format_duration(t_c));
    table.add(util::format_duration(t_f));
  }

  std::cout << "# Normal-variant ablation, k=" << k
            << ", pfail=" << cli.get_double("pfail") << "\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << '\n';
  return 0;
}
