// bench/bench_scenario.cpp
//
// Compiled-vs-per-call microbenchmark for the Scenario redesign: the cost
// of evaluating one (DAG, pfail) cell with every method through
//
//   (a) the legacy per-call path — evaluate(dag, model, retry, opt),
//       which compiles a fresh Scenario (CSR build, topo sort, one
//       exp/log1p pair per task) inside EVERY call, and
//   (b) the compile-once path — one Scenario::compile, then
//       evaluate(scenario, opt) repeatedly,
//
// plus Scenario::compiled_count() deltas proving (b) really compiles once.
// Emits BENCH_scenario.json so the re-preprocessing win is tracked from
// this PR onward. The cheap closed-form methods (fo, sculli, corlca,
// bounds) are the interesting rows: there the per-cell preprocessing IS
// the dominant cost, which is exactly the serving workload (many methods /
// repeated queries on one compiled cell) the redesign targets.
//
//   ./bench_scenario [reps] [k] [pfail]   (defaults: 200, 10, 0.001)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/failure_model.hpp"
#include "exp/evaluator.hpp"
#include "gen/lu.hpp"
#include "scenario/scenario.hpp"
#include "util/timer.hpp"

namespace {

using namespace expmk;

double checksum_guard = 0.0;  // keeps the evaluation loops from eliding

struct MethodRow {
  std::string name;
  double per_call_us = 0.0;
  double compiled_us = 0.0;
  double speedup = 0.0;
  std::uint64_t per_call_compiles = 0;
  std::uint64_t compiled_compiles = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t reps =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const int k = argc > 2 ? std::atoi(argv[2]) : 10;
  const double pfail = argc > 3 ? std::atof(argv[3]) : 0.001;

  const auto g = gen::lu_dag(k);
  const auto model = core::calibrate(g, pfail);
  const auto retry = core::RetryModel::TwoState;
  std::printf("bench_scenario: LU k=%d (%zu tasks, %zu edges), pfail=%g, "
              "%llu reps/method\n",
              k, g.task_count(), g.edge_count(), pfail,
              static_cast<unsigned long long>(reps));

  exp::EvalOptions opt;
  opt.mc_trials = 2'000;  // keep the stochastic row bounded
  opt.threads = 1;

  const auto& reg = exp::EvaluatorRegistry::builtin();
  const std::vector<std::string> methods = {"fo",     "so",           "sculli",
                                            "corlca", "bounds.lower", "mc"};

  std::vector<MethodRow> rows;
  for (const std::string& name : methods) {
    const exp::Evaluator* e = reg.find(name);
    MethodRow row;
    row.name = name;

    // (a) per-call: the legacy adapter compiles a scenario inside every
    // evaluate() — the pre-redesign library did the equivalent rebuild.
    {
      const std::uint64_t before = scenario::Scenario::compiled_count();
      const util::Timer timer;
      for (std::uint64_t i = 0; i < reps; ++i) {
        checksum_guard += e->evaluate(g, model, retry, opt).mean;
      }
      row.per_call_us = timer.seconds() * 1e6 / static_cast<double>(reps);
      row.per_call_compiles = scenario::Scenario::compiled_count() - before;
    }

    // (b) compiled once, shared by every call.
    {
      const std::uint64_t before = scenario::Scenario::compiled_count();
      const scenario::Scenario sc =
          scenario::Scenario::compile(g, scenario::FailureSpec(model), retry);
      const util::Timer timer;
      for (std::uint64_t i = 0; i < reps; ++i) {
        checksum_guard += e->evaluate(sc, opt).mean;
      }
      row.compiled_us = timer.seconds() * 1e6 / static_cast<double>(reps);
      row.compiled_compiles = scenario::Scenario::compiled_count() - before;
    }

    row.speedup = row.compiled_us > 0.0 ? row.per_call_us / row.compiled_us
                                        : 0.0;
    std::printf("  %-14s per-call %9.1f us (%llu compiles)   compiled "
                "%9.1f us (%llu compile)   speedup %5.2fx\n",
                row.name.c_str(), row.per_call_us,
                static_cast<unsigned long long>(row.per_call_compiles),
                row.compiled_us,
                static_cast<unsigned long long>(row.compiled_compiles),
                row.speedup);
    rows.push_back(row);
  }

  // One compile per cell, however many methods run on it — the contract
  // the sweep runner relies on (tests/test_scenario.cpp pins it; here we
  // surface the counters for the artifact).
  std::vector<bench::JsonWriter> method_rows;
  method_rows.reserve(rows.size());
  for (const MethodRow& row : rows) {
    bench::JsonWriter w;
    w.field("method", row.name)
        .field("per_call_us", row.per_call_us)
        .field("compiled_us", row.compiled_us)
        .field("speedup", row.speedup)
        .field("per_call_compiles", row.per_call_compiles)
        .field("compiled_compiles", row.compiled_compiles);
    method_rows.push_back(std::move(w));
  }

  bench::JsonWriter out;
  out.field("bench", "scenario_compile_once")
      .field("dag", "lu")
      .field("k", k)
      .field("tasks", g.task_count())
      .field("edges", g.edge_count())
      .field("pfail", pfail)
      .field("retry", "two_state")
      .field("reps", reps)
      .field("mc_trials", opt.mc_trials)
      .array("methods", method_rows);
  out.write_file("BENCH_scenario.json");
  std::printf("  wrote BENCH_scenario.json (checksum %g)\n", checksum_guard);
  return 0;
}
