// bench/ablation_mc.cpp
//
// Ground-truth ablation: Monte-Carlo convergence (mean and CI vs trial
// count) and the control-variate estimator's variance reduction. Justifies
// the paper's 300,000-trial choice and our CV option.

#include <iostream>

#include "core/failure_model.hpp"
#include "gen/cholesky.hpp"
#include "mc/conditional.hpp"
#include "mc/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace expmk;
  util::Cli cli("ablation_mc",
                "Monte-Carlo convergence and control-variate effect");
  cli.add_int("k", 6, "Cholesky tile count");
  cli.add_double("pfail", 0.001, "per-average-task failure probability");
  cli.add_int("seed", 31337, "master seed");
  cli.add_flag("csv", "emit CSV");
  cli.parse(argc, argv);

  const auto g = gen::cholesky_dag(static_cast<int>(cli.get_int("k")));
  const auto model = core::calibrate(g, cli.get_double("pfail"));

  const std::vector<std::uint64_t> trial_counts = {1'000,  3'000,   10'000,
                                                   30'000, 100'000, 300'000};
  util::Table table({"trials", "plain_mean", "plain_ci95", "cv_mean",
                     "cv_ci95", "var_reduction", "cond_mean", "cond_ci95",
                     "time_plain"});
  for (const std::uint64_t trials : trial_counts) {
    mc::McConfig plain;
    plain.trials = trials;
    plain.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto rp = mc::run_monte_carlo(g, model, plain);

    mc::McConfig cv = plain;
    cv.control_variate = true;
    const auto rc = mc::run_monte_carlo(g, model, cv);

    mc::ConditionalMcConfig cond;
    cond.trials = trials;
    cond.seed = plain.seed;
    const auto rq = mc::run_conditional_monte_carlo(g, model, cond);

    table.begin_row();
    table.add_int(static_cast<std::int64_t>(trials));
    table.add_double(rp.mean);
    table.add_double(rp.ci95_half_width);
    table.add_double(rc.mean);
    table.add_double(rc.ci95_half_width);
    table.add_double(rc.variance_reduction);
    table.add_double(rq.mean);
    table.add_double(rq.ci95_half_width);
    table.add(util::format_duration(rp.seconds));
  }

  std::cout << "# Monte-Carlo convergence on Cholesky k=" << cli.get_int("k")
            << ", pfail=" << cli.get_double("pfail") << "\n";
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print_aligned(std::cout);
  }
  std::cout << '\n';
  return 0;
}
